"""Correction Propagation — incremental maintenance of label sequences.

Algorithm 2 of the paper.  After a batch of edge insertions/deletions, the
label state must be repaired so that every slot ``(v, t)`` can again be
treated as a uniform (source, position) draw over the *new* neighbourhood.
The paper's case analysis (Section IV-A) classifies each vertex by how its
neighbour set changed:

* **Category 1** — no change: keep everything.
* **Category 2** — only losses: a slot is repicked iff its recorded source
  edge was deleted; surviving sources remain uniform over the remaining
  neighbours (Theorem 4).
* **Category 3** — gains (and maybe losses): a slot whose source survived is
  kept with probability ``n_u / (n_u + n_a)``, otherwise repicked uniformly
  *from the added neighbours*; a slot whose source was deleted is repicked
  from all current neighbours (Theorem 5).

Repairs then cascade: every slot that fetched a changed value is corrected
through the reverse records ``R`` (Section IV-B), strictly forward in
iteration index, so a single ascending pass over ``t`` reaches the fixpoint
(a label picked at iteration ``k`` can only feed slots with ``t > k``).

The implementation is event-driven — cost proportional to the number of
touched labels ``η``, not to ``T·|V|`` — which is exactly the property
Figure 9 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.labels import NO_SOURCE
from repro.core.randomness import (
    draw_keep_uniform,
    draw_position,
    draw_src_index,
    slot_hash,
)
from repro.core.rslpa import ReferencePropagator
from repro.graph.edits import EditBatch

__all__ = [
    "UpdateReport",
    "CorrectionPropagator",
    "keep_lottery_uniform",
    "repick_draw",
]


def keep_lottery_uniform(seed: int, vertex: int, iteration: int, batch_epoch: int) -> float:
    """The Theorem-5 keep-lottery draw for a slot, fresh per batch.

    Shared by the sequential corrector and the distributed program so both
    make identical keep/switch decisions.
    """
    base = slot_hash(seed, vertex, iteration, 0)
    return draw_keep_uniform(slot_hash(base, vertex, iteration, batch_epoch))


def repick_draw(
    seed: int, vertex: int, iteration: int, epoch: int, num_candidates: int
) -> Tuple[int, int]:
    """The (candidate index, position) pair for a repick at a given epoch."""
    h = slot_hash(seed, vertex, iteration, epoch)
    return draw_src_index(h, num_candidates), draw_position(h, iteration)


@dataclass
class UpdateReport:
    """What one incremental update did — the measurable side of Section IV-D.

    ``touched_labels`` is the paper's ``η``: the number of slots whose label
    was re-drawn or whose value was corrected by the cascade.

    With ``track_slots=False`` the report counts distinct touched slots
    without materialising the ``touched_slots`` set (the benchmark fast
    path).  The count is exact because the two note sources are disjoint: a
    repicked slot is detached before the cascade starts, so it can never
    also receive a cascaded correction, and each slot is repicked (and
    notified) at most once per batch.
    """

    batch_size: int = 0
    num_inserted: int = 0
    num_deleted: int = 0
    repicked: int = 0
    keep_lotteries: int = 0
    lottery_switches: int = 0
    cascade_corrections: int = 0
    value_changes: int = 0
    touched_slots: Set[Tuple[int, int]] = field(default_factory=set, repr=False)
    track_slots: bool = True
    touched_count: int = 0

    def note_touched(self, v: int, t: int) -> None:
        """Record slot ``(v, t)`` as touched (set or counter, per mode)."""
        if self.track_slots:
            self.touched_slots.add((v, t))
        else:
            self.touched_count += 1

    def note_touched_many(self, vs, t: int) -> None:
        """Record every slot ``(v, t) for v in vs`` as touched."""
        if self.track_slots:
            self.touched_slots.update((int(v), t) for v in vs)
        else:
            self.touched_count += len(vs)

    def note_touched_pairs(self, vs, ts) -> None:
        """Record slots ``(vs[i], ts[i])`` as touched (paired arrays)."""
        if self.track_slots:
            self.touched_slots.update(
                zip((int(v) for v in vs), (int(t) for t in ts))
            )
        else:
            self.touched_count += len(vs)

    @property
    def touched_labels(self) -> int:
        """η: distinct slots re-drawn or value-corrected."""
        if self.track_slots:
            return len(self.touched_slots)
        return self.touched_count


class CorrectionPropagator:
    """Applies edit batches to a :class:`ReferencePropagator`'s state.

    The propagator, its graph and its label state are mutated in place; each
    :meth:`apply_batch` call returns an :class:`UpdateReport`.

    The batch epoch feeds the keep-lottery randomness so that repeated
    batches draw fresh lotteries, while the per-slot epoch feeds repick
    randomness so that a slot repicked twice in one batch lifetime gets
    independent draws.

    ``track_slots=False`` switches the reports to the counting fast path
    (η without the per-slot set; see :class:`UpdateReport`).
    """

    def __init__(self, propagator: ReferencePropagator, track_slots: bool = True):
        self.propagator = propagator
        self.graph = propagator.graph
        self.state = propagator.state
        self.seed = propagator.seed
        self.batch_epoch = 0
        self.track_slots = track_slots

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def apply_batch(self, batch: EditBatch) -> UpdateReport:
        """Apply a validated edit batch: mutate graph, repair label state.

        Vertices mentioned by inserted edges that do not exist yet are
        created (the paper's vertex-insertion premise); vertices left with
        degree 0 keep their state and fall back to their own label.
        """
        batch.validate_against(self.graph)
        self.batch_epoch += 1
        report = UpdateReport(
            batch_size=batch.size,
            num_inserted=len(batch.insertions),
            num_deleted=len(batch.deletions),
            track_slots=self.track_slots,
        )

        added = batch.added_neighbors()
        removed = batch.removed_neighbors()

        # --- 1. mutate the graph and caches -----------------------------
        new_vertices: List[int] = []
        for u, v in batch.insertions:
            for endpoint in (u, v):
                if not self.graph.has_vertex(endpoint):
                    self.graph.add_vertex(endpoint)
                    new_vertices.append(endpoint)
        for u, v in batch.deletions:
            self.graph.remove_edge(u, v)
        for u, v in batch.insertions:
            self.graph.add_edge(u, v)
        for v in set(added) | set(removed):
            self.propagator.invalidate_neighbors(v)
        for v in new_vertices:
            self.propagator.add_vertex_state(v)

        # --- 2. per-slot category handling -------------------------------
        # Collect repick decisions first so that *all* stale reverse records
        # are detached before any cascade notification is generated.
        repick_all: List[Tuple[int, int]] = []  # (v, t): draw over all nbrs
        repick_added: List[Tuple[int, int]] = []  # (v, t): draw over added
        t_max = self.state.num_iterations

        touched_vertices = sorted(set(added) | set(removed))
        for v in touched_vertices:
            removed_here = removed.get(v, set())
            added_here = added.get(v, set())
            current = self.propagator.sorted_neighbors(v)
            n_current = len(current)
            n_added = len(added_here)
            n_unchanged = n_current - n_added
            for t in range(1, t_max + 1):
                src = self.state.srcs[v][t]
                if src == NO_SOURCE:
                    # Fallback slot: the vertex had no neighbours when this
                    # slot was drawn (so it has no "unchanged" source to
                    # keep).  If it gained neighbours, draw over all of them.
                    if n_added > 0:
                        repick_all.append((v, t))
                    continue
                if src in removed_here:
                    # Source edge deleted: must repick from current nbrs
                    # (Category 2 second case / Category 3 second case).
                    repick_all.append((v, t))
                    continue
                if n_added == 0:
                    continue  # Category 1 or surviving Category-2 slot: keep.
                # Category 3 with surviving source: keep lottery (Theorem 5).
                report.keep_lotteries += 1
                lottery = keep_lottery_uniform(self.seed, v, t, self.batch_epoch)
                if lottery < n_added / (n_unchanged + n_added):
                    report.lottery_switches += 1
                    repick_added.append((v, t))
                # else: keep — Theorem 5 makes the result uniform over all
                # current neighbours.

        # Detach every slot that will be repicked (clears stale records).
        for v, t in repick_all:
            self.state.detach_slot(v, t)
        for v, t in repick_added:
            self.state.detach_slot(v, t)

        # --- 3. execute repicks and cascade, ascending in t ---------------
        pending_repick_all: Dict[int, List[int]] = {}
        for v, t in repick_all:
            pending_repick_all.setdefault(t, []).append(v)
        pending_repick_added: Dict[int, List[Tuple[int, Tuple[int, ...]]]] = {}
        for v, t in repick_added:
            pending_repick_added.setdefault(t, []).append(
                (v, tuple(sorted(added.get(v, ()))))
            )

        # notifications[t] = {vertex: corrected value}
        notifications: Dict[int, Dict[int, int]] = {}

        for t in range(1, t_max + 1):
            # 3a. cascade corrections arriving at iteration t.
            arrived = notifications.pop(t, None)
            if arrived:
                for v, new_label in arrived.items():
                    report.cascade_corrections += 1
                    if self.state.labels[v][t] == new_label:
                        continue
                    self.state.set_label(v, t, new_label)
                    report.value_changes += 1
                    report.note_touched(v, t)
                    self._notify_receivers(v, t, new_label, notifications)
            # 3b. repicks at iteration t (read post-correction upstream).
            for v in pending_repick_all.get(t, ()):
                self._execute_repick(v, t, None, report, notifications)
            for v, added_nbrs in pending_repick_added.get(t, ()):
                self._execute_repick(v, t, added_nbrs, report, notifications)

        if notifications:
            leftover = sorted(notifications)[:3]
            raise AssertionError(
                f"correction propagation left pending notifications at {leftover}"
            )
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _execute_repick(
        self,
        v: int,
        t: int,
        added_nbrs: Optional[Tuple[int, ...]],
        report: UpdateReport,
        notifications: Dict[int, Dict[int, int]],
    ) -> None:
        """Draw a fresh (src, pos) for slot (v, t) and install the new value.

        ``added_nbrs`` restricts the draw to the newly-added neighbours
        (the Theorem-5 switch case); ``None`` draws over all current
        neighbours.  Epochs guarantee fresh randomness per redraw.
        """
        state = self.state
        candidates = (
            added_nbrs if added_nbrs is not None else self.propagator.sorted_neighbors(v)
        )
        old_label = state.labels[v][t]
        epoch = state.epochs[v][t] + 1
        report.repicked += 1
        report.note_touched(v, t)
        if len(candidates) == 0:
            # Vertex is now isolated: fall back to its own initial label.
            state.replace_pick(v, t, state.labels[v][0], NO_SOURCE, NO_SOURCE, epoch)
        else:
            idx, pos = repick_draw(self.seed, v, t, epoch, len(candidates))
            src = candidates[idx]
            state.replace_pick(v, t, state.labels[src][pos], src, pos, epoch)
        new_label = state.labels[v][t]
        if new_label != old_label:
            report.value_changes += 1
            self._notify_receivers(v, t, new_label, notifications)

    def _notify_receivers(
        self,
        v: int,
        t: int,
        new_label: int,
        notifications: Dict[int, Dict[int, int]],
    ) -> None:
        """Queue the corrected value of slot (v, t) to all its receivers.

        A receiver ``(tar, k)`` always has ``k > t`` (labels are only fetched
        from earlier iterations), so the ascending-t driver loop will still
        visit it.
        """
        for tar, k in self.state.receivers_of(v, t):
            if k <= t:  # defensive: would violate the propagation-DAG shape
                raise AssertionError(
                    f"record ({v}, {t}) -> ({tar}, {k}) points backwards in time"
                )
            notifications.setdefault(k, {})[tar] = new_label

    # ------------------------------------------------------------------
    # Vertex-level convenience (paper Section IV premises)
    # ------------------------------------------------------------------
    def remove_vertex(self, v: int) -> UpdateReport:
        """Delete a vertex: apply the all-incident-edges deletion batch, then
        drop its state once nothing references it anymore."""
        if not self.graph.has_vertex(v):
            raise KeyError(f"vertex {v} not in graph")
        incident = EditBatch.build(
            deletions=[(v, u) for u in self.graph.neighbors_view(v)]
        )
        report = (
            self.apply_batch(incident)
            if incident
            else UpdateReport(track_slots=self.track_slots)
        )
        # After the batch no slot sources from v (all its edges are gone and
        # every dependent slot was repicked), but v's own slots may still
        # hold sources — detach them so the reverse maps clear.
        for t in range(1, self.state.num_iterations + 1):
            self.state.detach_slot(v, t)
        self.propagator.drop_vertex_state(v)
        self.graph.remove_vertex(v)
        return report
