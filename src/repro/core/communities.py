"""The :class:`Cover` datatype: a set of (possibly overlapping) communities.

Detection algorithms return covers; metrics consume them.  A cover is an
immutable collection of vertex sets plus a lazily-built membership index.
"""

from __future__ import annotations

from typing import Collection, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.metrics.entropy import size_entropy_from_sizes

__all__ = ["Cover"]


class Cover:
    """An overlapping community assignment.

    >>> cover = Cover([{0, 1, 2}, {2, 3}])
    >>> sorted(cover.memberships_of(2))
    [0, 1]
    >>> cover.overlapping_vertices()
    frozenset({2})
    """

    __slots__ = ("_communities", "_membership")

    def __init__(self, communities: Iterable[Collection[int]]):
        cleaned: List[FrozenSet[int]] = []
        for community in communities:
            fs = frozenset(community)
            if fs:
                cleaned.append(fs)
        # Canonical deterministic order: by (-size, sorted members).
        cleaned.sort(key=lambda c: (-len(c), tuple(sorted(c))))
        self._communities: Tuple[FrozenSet[int], ...] = tuple(cleaned)
        self._membership: Optional[Dict[int, Tuple[int, ...]]] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def communities(self) -> Tuple[FrozenSet[int], ...]:
        return self._communities

    def __len__(self) -> int:
        return len(self._communities)

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return iter(self._communities)

    def __getitem__(self, index: int) -> FrozenSet[int]:
        return self._communities[index]

    def __bool__(self) -> bool:
        return bool(self._communities)

    def __eq__(self, other) -> bool:
        """Covers are equal as *multisets* of communities."""
        if not isinstance(other, Cover):
            return NotImplemented
        return sorted(map(sorted, self._communities)) == sorted(
            map(sorted, other._communities)
        )

    def __repr__(self) -> str:
        sizes = self.sizes()
        preview = sizes[:6]
        suffix = "..." if len(sizes) > 6 else ""
        return f"Cover(k={len(self)}, sizes={preview}{suffix})"

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def _index(self) -> Dict[int, Tuple[int, ...]]:
        if self._membership is None:
            index: Dict[int, List[int]] = {}
            for cid, community in enumerate(self._communities):
                for v in community:
                    index.setdefault(v, []).append(cid)
            self._membership = {v: tuple(cids) for v, cids in index.items()}
        return self._membership

    def memberships_of(self, vertex: int) -> Tuple[int, ...]:
        """Community indices containing ``vertex`` (empty tuple if none)."""
        return self._index().get(vertex, ())

    def covered_vertices(self) -> FrozenSet[int]:
        return frozenset(self._index())

    def overlapping_vertices(self) -> FrozenSet[int]:
        """Vertices belonging to two or more communities."""
        return frozenset(v for v, cids in self._index().items() if len(cids) > 1)

    def sizes(self) -> List[int]:
        return [len(c) for c in self._communities]

    def size_entropy(self, num_vertices: int) -> float:
        """Eq. 1 entropy of this cover's relative community sizes."""
        return size_entropy_from_sizes(self.sizes(), num_vertices)

    def membership_counts(self) -> Dict[int, int]:
        """Vertex -> number of communities it belongs to."""
        return {v: len(cids) for v, cids in self._index().items()}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_membership(cls, membership: Dict[int, Iterable[int]]) -> "Cover":
        """Build from a vertex -> community-ids mapping."""
        groups: Dict[int, Set[int]] = {}
        for vertex, cids in membership.items():
            for cid in cids:
                groups.setdefault(cid, set()).add(vertex)
        return cls(groups.values())

    def restricted_to(self, universe: Collection[int]) -> "Cover":
        """Drop vertices outside ``universe`` (empty communities vanish)."""
        keep = set(universe)
        return Cover(c & keep for c in self._communities)

    def without_smaller_than(self, min_size: int) -> "Cover":
        """Drop communities with fewer than ``min_size`` members."""
        return Cover(c for c in self._communities if len(c) >= min_size)

    def as_sets(self) -> List[Set[int]]:
        """Mutable copies of the communities (for metric functions)."""
        return [set(c) for c in self._communities]
