"""Community evolution tracking across dynamic snapshots.

The paper's motivation is to *monitor the evolution of communities* upon
graph updates (Section I).  The detector maintains the label state; this
module adds the monitoring layer on top: matching the covers extracted at
consecutive points in time and classifying what happened to each community
— continuation, growth/shrinkage, birth, death, merge, and split.

Matching uses maximum Jaccard overlap with a threshold, the standard
approach in the community-evolution literature (e.g. Greene et al. 2010),
which fits the paper's streaming operating mode (Section V-B3: update
continuously, extract periodically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.communities import Cover
from repro.utils.validation import check_fraction

__all__ = [
    "CommunityEvent",
    "TransitionReport",
    "match_covers",
    "assign_stable_ids",
    "CommunityTracker",
]


def _jaccard(a: FrozenSet[int], b: FrozenSet[int]) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


@dataclass(frozen=True)
class CommunityEvent:
    """One lifecycle event between two consecutive extractions.

    ``kind`` is one of ``continued``, ``grown``, ``shrunk``, ``born``,
    ``died``, ``merged``, ``split``.  ``before``/``after`` hold the indices
    of the involved communities in the old/new cover.
    """

    kind: str
    before: Tuple[int, ...]
    after: Tuple[int, ...]
    similarity: float = 0.0


@dataclass
class TransitionReport:
    """All events between two covers, plus a continuity score."""

    events: List[CommunityEvent] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[CommunityEvent]:
        return [e for e in self.events if e.kind == kind]

    @property
    def num_born(self) -> int:
        return len(self.of_kind("born"))

    @property
    def num_died(self) -> int:
        return len(self.of_kind("died"))

    def continuity(self) -> float:
        """Mean match similarity over surviving communities (1.0 = frozen)."""
        survivors = [
            e.similarity
            for e in self.events
            if e.kind in ("continued", "grown", "shrunk")
        ]
        if not survivors:
            return 0.0
        return sum(survivors) / len(survivors)

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        parts = [f"{kind}={count}" for kind, count in sorted(counts.items())]
        return ", ".join(parts) if parts else "no communities"


def match_covers(
    old: Cover,
    new: Cover,
    match_threshold: float = 0.3,
    drift_tolerance: float = 0.1,
) -> TransitionReport:
    """Classify the transition from ``old`` to ``new``.

    A new community matches the old one with which it has the largest
    Jaccard overlap, provided it clears ``match_threshold``.  Old
    communities matched by several new ones are *splits*; new communities
    that are the best match of several old ones are *merges*.  Surviving
    matches are classified by relative size change against
    ``drift_tolerance``.
    """
    check_fraction(match_threshold, "match_threshold")
    if not 0 <= drift_tolerance < 1:
        raise ValueError(f"drift_tolerance must be in [0, 1), got {drift_tolerance}")

    report = TransitionReport()

    # Best match in each direction, gated by the threshold.
    def best_match(community, candidates) -> Tuple[int, float]:
        best_idx, best_sim = -1, 0.0
        for idx, candidate in enumerate(candidates):
            sim = _jaccard(community, candidate)
            if sim > best_sim:
                best_idx, best_sim = idx, sim
        return (best_idx, best_sim) if best_sim >= match_threshold else (-1, 0.0)

    fwd: Dict[int, Tuple[int, float]] = {}  # old i -> best new j
    for i, old_c in enumerate(old):
        j, sim = best_match(old_c, list(new))
        if j >= 0:
            fwd[i] = (j, sim)
    bwd: Dict[int, Tuple[int, float]] = {}  # new j -> best old i
    for j, new_c in enumerate(new):
        i, sim = best_match(new_c, list(old))
        if i >= 0:
            bwd[j] = (i, sim)

    consumed_old: set = set()
    consumed_new: set = set()

    # Merges: several old communities all point at the same new one.
    merge_groups: Dict[int, List[int]] = {}
    for i, (j, _sim) in fwd.items():
        merge_groups.setdefault(j, []).append(i)
    for j, olds in sorted(merge_groups.items()):
        if len(olds) > 1:
            sim = max(fwd[i][1] for i in olds)
            report.events.append(
                CommunityEvent("merged", tuple(sorted(olds)), (j,), sim)
            )
            consumed_old.update(olds)
            consumed_new.add(j)

    # Splits: several new communities all point back at the same old one.
    split_groups: Dict[int, List[int]] = {}
    for j, (i, _sim) in bwd.items():
        if j not in consumed_new:
            split_groups.setdefault(i, []).append(j)
    for i, news in sorted(split_groups.items()):
        if i in consumed_old:
            continue
        if len(news) > 1:
            sim = max(bwd[j][1] for j in news)
            report.events.append(
                CommunityEvent("split", (i,), tuple(sorted(news)), sim)
            )
            consumed_old.add(i)
            consumed_new.update(news)

    # Survivals: remaining forward matches.
    for i, (j, sim) in sorted(fwd.items()):
        if i in consumed_old or j in consumed_new:
            continue
        old_size, new_size = len(old[i]), len(new[j])
        if new_size > old_size * (1 + drift_tolerance):
            kind = "grown"
        elif new_size < old_size * (1 - drift_tolerance):
            kind = "shrunk"
        else:
            kind = "continued"
        report.events.append(CommunityEvent(kind, (i,), (j,), sim))
        consumed_old.add(i)
        consumed_new.add(j)

    # Everything unmatched is a death (old side) or birth (new side).
    for i in range(len(old)):
        if i not in consumed_old:
            report.events.append(CommunityEvent("died", (i,), ()))
    for j in range(len(new)):
        if j not in consumed_new:
            report.events.append(CommunityEvent("born", (), (j,)))

    return report


def assign_stable_ids(
    old: Cover,
    old_ids: Sequence[int],
    new: Cover,
    next_id: int,
    match_threshold: float = 0.3,
    drift_tolerance: float = 0.1,
) -> Tuple[Tuple[int, ...], int, TransitionReport]:
    """Carry stable community ids from ``old`` (labelled ``old_ids``) to ``new``.

    The matching is :func:`match_covers`; ids flow along its events —
    survivors inherit, a merge target inherits from its closest constituent,
    a split's closest child keeps the parent's id while its siblings are
    births, and every unmatched new community draws a fresh id from
    ``next_id`` upward.  Returns ``(new_ids, next_id, report)`` with
    ``new_ids[j]`` the stable id of ``new[j]``; ids of died/absorbed
    communities are retired, never reused.

    This is what gives the service layer's query plane identity across
    extractions: ``members(cid)`` keeps answering for the same sociological
    community even as its membership drifts.
    """
    if len(old_ids) != len(old):
        raise ValueError(
            f"old_ids has {len(old_ids)} entries for {len(old)} communities"
        )
    report = match_covers(
        old,
        new,
        match_threshold=match_threshold,
        drift_tolerance=drift_tolerance,
    )
    new_ids: List[Optional[int]] = [None] * len(new)

    def closest(candidates: Sequence[int], target: FrozenSet[int], side: Cover) -> int:
        # Deterministic tie-break: highest Jaccard, then lowest index.
        return max(candidates, key=lambda idx: (_jaccard(side[idx], target), -idx))

    for event in report.events:
        if event.kind in ("continued", "grown", "shrunk"):
            new_ids[event.after[0]] = old_ids[event.before[0]]
        elif event.kind == "merged":
            j = event.after[0]
            new_ids[j] = old_ids[closest(event.before, new[j], old)]
        elif event.kind == "split":
            i = event.before[0]
            new_ids[closest(event.after, old[i], new)] = old_ids[i]
    for j in range(len(new)):
        if new_ids[j] is None:
            new_ids[j] = next_id
            next_id += 1
    return tuple(new_ids), next_id, report


class CommunityTracker:
    """Rolling tracker: feed covers over time, receive transition reports.

    >>> tracker = CommunityTracker()
    >>> first = tracker.observe(Cover([{0, 1, 2}]))
    >>> first is None   # nothing to compare against yet
    True
    >>> report = tracker.observe(Cover([{0, 1, 2, 3}]))
    >>> report.summary()
    'grown=1'
    """

    def __init__(self, match_threshold: float = 0.3, drift_tolerance: float = 0.1):
        self.match_threshold = match_threshold
        self.drift_tolerance = drift_tolerance
        self.history: List[Cover] = []
        self.reports: List[TransitionReport] = []

    @property
    def current(self) -> Optional[Cover]:
        return self.history[-1] if self.history else None

    def observe(self, cover: Cover) -> Optional[TransitionReport]:
        """Record a new extraction; returns the transition from the last one."""
        previous = self.current
        self.history.append(cover)
        if previous is None:
            return None
        report = match_covers(
            previous,
            cover,
            match_threshold=self.match_threshold,
            drift_tolerance=self.drift_tolerance,
        )
        self.reports.append(report)
        return report

    def lifetime_of(self, vertex: int) -> List[Tuple[int, int]]:
        """``(snapshot index, membership count)`` history for one vertex."""
        return [
            (idx, len(cover.memberships_of(vertex)))
            for idx, cover in enumerate(self.history)
        ]
