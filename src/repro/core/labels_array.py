"""Array-backed label state: the incremental engine's compute substrate.

:class:`ArrayLabelState` stores what :class:`repro.core.labels.LabelState`
stores — label sequences, provenance, epochs, reverse records — but as
numpy arrays over contiguous vertex ids ``0..n-1``:

* ``labels`` / ``srcs`` / ``poss`` / ``epochs`` are ``(T+1, n)`` int64
  matrices (row ``t`` = iteration ``t``, column ``v`` = vertex ``v``),
  exactly the layout :class:`repro.core.fast.FastPropagator` produces;
* reverse records — "which slots fetched slot ``(v, t)``" — live in a
  CSR-style flat structure: one receiver array sorted by source-slot key
  ``v * (T+1) + t``, located by binary search, instead of a dict-of-set
  per slot.

The reverse structure is maintained incrementally in O(η) per batch: a
repicked slot kills its old record via an O(1) ``rec_pos`` handle (an
``alive`` mask over the flat array) and registers its new record in a small
``extras`` overlay keyed by source slot.  When the overlay plus the dead
entries outgrow the static part, :meth:`reindex` rebuilds the flat arrays
from the provenance matrices in a few vectorised passes — amortised, never
per-slot Python work.

Both representations are freely convertible (:meth:`from_label_state` /
:meth:`to_label_state`) and the test suite asserts the round trip is exact,
including reverse records.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.core.labels import NO_SOURCE, LabelState
from repro.graph.adjacency import Graph

__all__ = ["ArrayLabelState"]


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flatten per-query index ranges ``[starts[i], starts[i]+counts[i])``.

    The standard repeat/cumsum multi-slice gather (same idiom as
    :func:`repro.graph.partition.slice_csr`), so variable-length range
    lookups stay a single C-level pass.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts  # exclusive prefix sums
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)


class ArrayLabelState:
    """Label sequences + provenance + reverse records as int64 matrices.

    Construct via :meth:`from_matrices` (e.g. from a
    :class:`~repro.core.fast.FastPropagator` run) or
    :meth:`from_label_state`.  Vertex ids must be contiguous ``0..n-1``;
    vertices added later must extend that range (gaps are rejected), and
    dropped vertices leave a dead column that can be resurrected if the
    same id is re-inserted — matching the dict state's semantics for the
    delete-then-recreate cycle.
    """

    __slots__ = (
        "labels",
        "srcs",
        "poss",
        "epochs",
        "alive",
        "_stride",
        "_rev_key",
        "_rev_tar",
        "_rev_k",
        "_rev_alive",
        "_rec_pos",
        "_extras",
        "_extra_count",
        "_dead_static",
    )

    def __init__(
        self,
        labels: np.ndarray,
        srcs: np.ndarray,
        poss: np.ndarray,
        epochs: np.ndarray,
        alive: Optional[np.ndarray] = None,
    ):
        self.labels = np.ascontiguousarray(labels, dtype=np.int64)
        self.srcs = np.ascontiguousarray(srcs, dtype=np.int64)
        self.poss = np.ascontiguousarray(poss, dtype=np.int64)
        self.epochs = np.ascontiguousarray(epochs, dtype=np.int64)
        shape = self.labels.shape
        if len(shape) != 2:
            raise ValueError(f"label matrix must be 2-D, got shape {shape}")
        if not (self.srcs.shape == self.poss.shape == self.epochs.shape == shape):
            raise ValueError("labels/srcs/poss/epochs shapes disagree")
        if alive is None:
            alive = np.ones(shape[1], dtype=bool)
        self.alive = np.ascontiguousarray(alive, dtype=bool)
        if self.alive.shape != (shape[1],):
            raise ValueError("alive mask length does not match the column count")
        self._stride = shape[0]  # T + 1; slot key = v * stride + t
        self._extras: Dict[int, Set[Tuple[int, int]]] = {}
        self._extra_count = 0
        self._dead_static = 0
        self.reindex()

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_matrices(
        cls,
        labels: np.ndarray,
        srcs: np.ndarray,
        poss: np.ndarray,
        epochs: Optional[np.ndarray] = None,
    ) -> "ArrayLabelState":
        """Adopt ``(T+1, n)`` matrices; epochs default to all-zero."""
        if epochs is None:
            epochs = np.zeros_like(np.asarray(labels, dtype=np.int64))
        return cls(labels, srcs, poss, epochs)

    @classmethod
    def from_label_state(cls, state: LabelState) -> "ArrayLabelState":
        """Convert a dict-backed state (ids must be contiguous ``0..n-1``)."""
        ids = sorted(state.vertices())
        n = len(ids)
        if ids != list(range(n)):
            raise ValueError(
                "ArrayLabelState requires contiguous vertex ids 0..n-1; "
                "use repro.graph.io.relabel_to_integers first"
            )
        t1 = state.num_iterations + 1
        if n == 0:
            empty = np.empty((t1, 0), dtype=np.int64)
            return cls(empty, empty.copy(), empty.copy(), empty.copy())
        labels = np.array([state.labels[v] for v in range(n)], dtype=np.int64).T
        srcs = np.array([state.srcs[v] for v in range(n)], dtype=np.int64).T
        poss = np.array([state.poss[v] for v in range(n)], dtype=np.int64).T
        epochs = np.array([state.epochs[v] for v in range(n)], dtype=np.int64).T
        return cls(labels, srcs, poss, epochs)

    def to_label_state(self) -> LabelState:
        """Materialise the equivalent fully-recorded dict-backed state."""
        state = LabelState()
        t_max = self.num_iterations
        live = np.nonzero(self.alive)[0]
        ids = live.tolist()
        labels_cols = self.labels[:, live].T.tolist()
        srcs_cols = self.srcs[:, live].T.tolist()
        poss_cols = self.poss[:, live].T.tolist()
        epochs_cols = self.epochs[:, live].T.tolist()
        for j, v in enumerate(ids):
            state.labels[v] = labels_cols[j]
            state.srcs[v] = srcs_cols[j]
            state.poss[v] = poss_cols[j]
            state.epochs[v] = epochs_cols[j]
            state.receivers[v] = {}
        if live.size:
            row_idx, col_idx = np.nonzero(self.srcs[1:, live] != NO_SOURCE)
            ks = row_idx + 1
            tars = live[col_idx]
            for src, pos, tar, k in zip(
                self.srcs[ks, tars].tolist(),
                self.poss[ks, tars].tolist(),
                tars.tolist(),
                ks.tolist(),
            ):
                state.receivers[src].setdefault(pos, set()).add((tar, k))
        state.set_num_iterations(t_max)
        return state

    def sequences_dict(self) -> Dict[int, List[int]]:
        """Vertex -> label sequence as plain lists (post-processing input)."""
        live = np.nonzero(self.alive)[0]
        return dict(zip(live.tolist(), self.labels[:, live].T.tolist()))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        return self._stride - 1

    @property
    def num_vertices(self) -> int:
        return int(self.alive.sum())

    @property
    def num_columns(self) -> int:
        """Allocated columns, including dead ones (ids ever seen)."""
        return self.labels.shape[1]

    def vertices(self) -> Iterator[int]:
        return iter(np.nonzero(self.alive)[0].tolist())

    def has_vertex(self, v: int) -> bool:
        return 0 <= v < self.num_columns and bool(self.alive[v])

    def slot_key(self, v: int, t: int) -> int:
        return v * self._stride + t

    def receivers_of(self, v: int, t: int) -> Set[Tuple[int, int]]:
        """Who fetched slot ``(v, t)`` — a fresh set, like the dict state."""
        _, tar, k = self.receivers_query(
            np.array([self.slot_key(v, t)], dtype=np.int64)
        )
        return set(zip(tar.tolist(), k.tolist()))

    # ------------------------------------------------------------------
    # Reverse-record structure
    # ------------------------------------------------------------------
    def reindex(self) -> None:
        """Rebuild the static reverse CSR from the provenance matrices.

        Fully vectorised (nonzero + one argsort); clears the extras overlay
        and the dead-entry debt.  Called at construction and whenever the
        overlay outgrows the static part (see :meth:`needs_reindex`).
        """
        if self._stride > 1 and self.num_columns:
            sub = self.srcs[1:] != NO_SOURCE
            if not self.alive.all():
                sub &= self.alive[np.newaxis, :]
            row_idx, tar = np.nonzero(sub)
            ks = row_idx + 1
            keys = self.srcs[ks, tar] * np.int64(self._stride) + self.poss[ks, tar]
            order = np.argsort(keys, kind="stable")
            self._rev_key = keys[order]
            self._rev_tar = tar[order].astype(np.int64, copy=False)
            self._rev_k = ks[order].astype(np.int64, copy=False)
        else:
            self._rev_key = np.empty(0, dtype=np.int64)
            self._rev_tar = np.empty(0, dtype=np.int64)
            self._rev_k = np.empty(0, dtype=np.int64)
        self._rev_alive = np.ones(len(self._rev_key), dtype=bool)
        self._rec_pos = np.full(self.labels.shape, -1, dtype=np.int64)
        if len(self._rev_key):
            self._rec_pos[self._rev_k, self._rev_tar] = np.arange(
                len(self._rev_key), dtype=np.int64
            )
        self._extras = {}
        self._extra_count = 0
        self._dead_static = 0

    def needs_reindex(self) -> bool:
        """True when the delta overlay justifies an amortised rebuild."""
        debt = self._extra_count + self._dead_static
        return debt > max(1024, len(self._rev_key) // 2)

    def receivers_query(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched receiver lookup for an array of source-slot keys.

        Returns ``(owner, tar, k)``: record ``i`` says slot ``(tar[i],
        k[i])`` fetched the slot behind ``keys[owner[i]]``.  Static hits are
        a binary search plus one flat gather; overlay hits are merged from
        the extras dict (bounded by the repicks since the last reindex).
        """
        # One binary-search call covers both bounds: for integer slot keys,
        # the right bound of ``key`` is the left bound of ``key + 1``.
        bounds = np.searchsorted(
            self._rev_key, np.concatenate([keys, keys + 1])
        ).astype(np.int64)
        left, right = bounds[: len(keys)], bounds[len(keys):]
        counts = right - left
        owner = np.repeat(np.arange(len(keys), dtype=np.int64), counts)
        flat = _expand_ranges(left, counts)
        live = self._rev_alive[flat]
        owner = owner[live]
        tar = self._rev_tar[flat[live]]
        k = self._rev_k[flat[live]]
        if self._extra_count:
            ex_owner: List[int] = []
            ex_tar: List[int] = []
            ex_k: List[int] = []
            extras = self._extras
            for i, key in enumerate(keys.tolist()):
                bucket = extras.get(key)
                if bucket:
                    for tt, kk in bucket:
                        ex_owner.append(i)
                        ex_tar.append(tt)
                        ex_k.append(kk)
            if ex_owner:
                owner = np.concatenate([owner, np.array(ex_owner, dtype=np.int64)])
                tar = np.concatenate([tar, np.array(ex_tar, dtype=np.int64)])
                k = np.concatenate([k, np.array(ex_k, dtype=np.int64)])
        return owner, tar, k

    def detach_slots(self, vs: np.ndarray, ts: np.ndarray) -> None:
        """Remove the reverse records of slots ``(vs[i], ts[i])`` and null
        their provenance (vectorised :meth:`LabelState.detach_slot`).

        Static records die via their O(1) ``rec_pos`` handle; overlay
        records are discarded from the extras dict (only slots repicked
        since the last reindex take that path).
        """
        vs = np.asarray(vs, dtype=np.int64)
        ts = np.asarray(ts, dtype=np.int64)
        pos = self._rec_pos[ts, vs]
        static = pos >= 0
        if static.any():
            self._rev_alive[pos[static]] = False
            self._dead_static += int(static.sum())
            self._rec_pos[ts[static], vs[static]] = -1
        for i in np.nonzero(~static)[0].tolist():
            v, t = int(vs[i]), int(ts[i])
            src = int(self.srcs[t, v])
            if src == NO_SOURCE:
                continue
            key = src * self._stride + int(self.poss[t, v])
            bucket = self._extras.get(key)
            if bucket is None or (v, t) not in bucket:
                raise ValueError(
                    f"record inconsistency: ({v}, {t}) not registered at "
                    f"source slot key {key}"
                )
            bucket.discard((v, t))
            if not bucket:
                del self._extras[key]
            self._extra_count -= 1
        self.srcs[ts, vs] = NO_SOURCE
        self.poss[ts, vs] = NO_SOURCE

    def register_slots(
        self, src_arr: np.ndarray, pos_arr: np.ndarray, tar_arr: np.ndarray, ks
    ) -> None:
        """Register records ``(tar[i], ks[i])`` at source slots
        ``(src[i], pos[i])``; ``ks`` may be a scalar level or a paired array.

        New records always land in the extras overlay (the static part is
        immutable between reindexes); the caller has already written the
        matching provenance into ``srcs``/``poss``.
        """
        keys = (src_arr * np.int64(self._stride) + pos_arr).tolist()
        extras = self._extras
        ks_list = (
            [int(ks)] * len(keys)
            if np.isscalar(ks)
            else np.asarray(ks).tolist()
        )
        for key, tar, k in zip(keys, tar_arr.tolist(), ks_list):
            extras.setdefault(key, set()).add((tar, k))
        self._extra_count += len(keys)

    # ------------------------------------------------------------------
    # Vertex lifecycle
    # ------------------------------------------------------------------
    def add_vertices(self, new_ids) -> None:
        """Create state for vertices added after propagation (fallback slots).

        Ids below the current column count resurrect dead columns; ids at or
        above it must exactly extend the contiguous range (the array
        substrate's id contract — reject gaps loudly rather than silently
        mis-indexing).
        """
        new_ids = list(new_ids)
        if not new_ids:
            return
        ncols = self.num_columns
        resurrect = [v for v in new_ids if 0 <= v < ncols]
        fresh = sorted(v for v in new_ids if v >= ncols)
        if any(v < 0 for v in new_ids):
            raise ValueError(f"negative vertex id in {new_ids!r}")
        for v in resurrect:
            if self.alive[v]:
                raise ValueError(f"vertex {v} already initialised")
        if fresh:
            if fresh != list(range(ncols, ncols + len(fresh))):
                raise ValueError(
                    f"new vertex ids {fresh} do not extend the contiguous "
                    f"range 0..{ncols - 1}; the array backend cannot "
                    "represent id gaps (use the reference corrector)"
                )
            k = len(fresh)
            fresh_arr = np.array(fresh, dtype=np.int64)
            self.labels = np.concatenate(
                [self.labels, np.broadcast_to(fresh_arr, (self._stride, k)).copy()],
                axis=1,
            )
            pad = np.full((self._stride, k), NO_SOURCE, dtype=np.int64)
            self.srcs = np.concatenate([self.srcs, pad], axis=1)
            self.poss = np.concatenate([self.poss, pad.copy()], axis=1)
            self.epochs = np.concatenate(
                [self.epochs, np.zeros((self._stride, k), dtype=np.int64)], axis=1
            )
            self.alive = np.concatenate([self.alive, np.ones(k, dtype=bool)])
            self._rec_pos = np.concatenate(
                [self._rec_pos, np.full((self._stride, k), -1, dtype=np.int64)], axis=1
            )
        for v in resurrect:
            self.labels[:, v] = v
            self.srcs[:, v] = NO_SOURCE
            self.poss[:, v] = NO_SOURCE
            self.epochs[:, v] = 0
            self.alive[v] = True

    def drop_vertex(self, v: int) -> None:
        """Mark ``v`` dead (its column is kept for potential resurrection).

        Mirrors :meth:`LabelState.drop_vertex`'s precondition — every slot
        referencing ``v`` must already be detached — and additionally
        requires ``v``'s own slots to be detached (sources nulled), since a
        dead column must not keep records alive.
        """
        if not self.has_vertex(v):
            raise KeyError(f"vertex {v} has no label state")
        if (self.srcs[1:, v] != NO_SOURCE).any():
            raise ValueError(
                f"cannot drop vertex {v}: its slots still hold sources "
                "(detach them first)"
            )
        keys = v * np.int64(self._stride) + np.arange(self._stride, dtype=np.int64)
        _, tar, k = self.receivers_query(keys)
        if len(tar):
            sample = sorted(zip(tar.tolist(), k.tolist()))[:5]
            raise ValueError(
                f"cannot drop vertex {v}: slots {sample} still fetch from it"
            )
        self.alive[v] = False

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, graph: Optional[Graph] = None) -> None:
        """Assert the full invariant set (raises ``AssertionError``).

        Checks the array-specific reverse structure — every slot with a
        source owns exactly one live record, static handles agree with the
        matrices, overlay buckets match — then delegates the semantic
        invariants (provenance values, edge existence) to
        :meth:`LabelState.validate` on the converted state.
        """
        stride = self._stride
        expected: Dict[Tuple[int, int], Tuple[int, int]] = {}
        live_cols = np.nonzero(self.alive)[0]
        if live_cols.size and stride > 1:
            row_idx, col_idx = np.nonzero(self.srcs[1:, live_cols] != NO_SOURCE)
            ks = row_idx + 1
            tars = live_cols[col_idx]
            for tar, k, src, pos in zip(
                tars.tolist(),
                ks.tolist(),
                self.srcs[ks, tars].tolist(),
                self.poss[ks, tars].tolist(),
            ):
                expected[(tar, k)] = (src, pos)
        seen: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for flat in np.nonzero(self._rev_alive)[0].tolist():
            tar, k = int(self._rev_tar[flat]), int(self._rev_k[flat])
            key = int(self._rev_key[flat])
            if (tar, k) in seen:
                raise AssertionError(f"duplicate live record for slot ({tar}, {k})")
            seen[(tar, k)] = (key // stride, key % stride)
            if self._rec_pos[k, tar] != flat:
                raise AssertionError(
                    f"rec_pos[{k}, {tar}] = {self._rec_pos[k, tar]} != {flat}"
                )
        extra_total = 0
        for key, bucket in self._extras.items():
            for tar, k in bucket:
                extra_total += 1
                if (tar, k) in seen:
                    raise AssertionError(
                        f"slot ({tar}, {k}) recorded both statically and in extras"
                    )
                seen[(tar, k)] = (key // stride, key % stride)
                if self._rec_pos[k, tar] != -1:
                    raise AssertionError(
                        f"extras record ({tar}, {k}) shadowed by rec_pos "
                        f"{self._rec_pos[k, tar]}"
                    )
        if extra_total != self._extra_count:
            raise AssertionError(
                f"extras count drift: {extra_total} records vs "
                f"counter {self._extra_count}"
            )
        if seen != expected:
            missing = sorted(set(expected) - set(seen))[:5]
            spurious = sorted(set(seen) - set(expected))[:5]
            mismatched = sorted(
                s for s in set(seen) & set(expected) if seen[s] != expected[s]
            )[:5]
            raise AssertionError(
                f"reverse records disagree with provenance: missing={missing}, "
                f"spurious={spurious}, mismatched={mismatched}"
            )
        self.to_label_state().validate(graph)

    def __repr__(self) -> str:
        return (
            f"ArrayLabelState(|V|={self.num_vertices}, T={self.num_iterations}, "
            f"records={int(self._rev_alive.sum()) + self._extra_count})"
        )
