"""Analytical cost model of Correction Propagation (Section IV-D).

Implements the paper's Equations 3-12:

* ``pc`` — probability that a label's chosen edge changed (Eq. 3);
* ``Q(t)`` — probability a label picked at iteration ``t`` needs no update,
  via the recursion ``Q(t) = (1 - pc/t) Q(t-1)`` (Eqs. 5-7);
* ``expected_updates`` — ``η̂ = T|V| - |V| Σ_t Q(t)`` (Eq. 8);
* ``best_case_updates`` — lower bound ``T|V|·pc`` (Eq. 10);
* ``worst_case_updates`` — upper bound (Eq. 12).

**Paper typo, corrected here** (see DESIGN.md): Eq. 3 as printed uses the
Condition-(2) factor ``(|E|-m_d)/(|E|-m_d+m_a)``, which is the *keep*
probability ``n_u/(n_u+n_a)`` from the Category-3 analysis — plugging in a
tiny batch (``m_d = m_a = 1`` on a million-edge graph) would give
``pc ≈ 1``, i.e. "every label needs an update", contradicting both the
algorithm and Figure 9.  The switch probability is the complement,
``n_a/(n_u+n_a) = m_a/(|E|-m_d+m_a)``, which is what
:func:`change_probability` uses.  The verbatim expression is kept as
:func:`change_probability_paper_verbatim` so the discrepancy can be plotted.
"""

from __future__ import annotations

import math
from typing import List

from repro.utils.validation import check_non_negative, check_positive, check_type

__all__ = [
    "change_probability",
    "change_probability_paper_verbatim",
    "survival_probabilities",
    "expected_updates",
    "best_case_updates",
    "worst_case_updates",
]


def _check_batch(num_edges: int, num_deleted: int, num_added: int) -> None:
    check_type(num_edges, int, "num_edges")
    check_type(num_deleted, int, "num_deleted")
    check_type(num_added, int, "num_added")
    check_positive(num_edges, "num_edges")
    check_non_negative(num_deleted, "num_deleted")
    check_non_negative(num_added, "num_added")
    if num_deleted > num_edges:
        raise ValueError(
            f"num_deleted={num_deleted} exceeds num_edges={num_edges}"
        )


def change_probability(num_edges: int, num_deleted: int, num_added: int) -> float:
    """``pc``: probability that one label's chosen edge changed (Eq. 3, fixed).

    ``pc = m_d/|E| + (1 - m_d/|E|) * m_a / (|E| - m_d + m_a)``

    Condition (1): the chosen edge was deleted.  Condition (2): it survived
    but the Category-3 lottery switched the pick to a newly-inserted edge.
    """
    _check_batch(num_edges, num_deleted, num_added)
    p_deleted = num_deleted / num_edges
    remaining = num_edges - num_deleted
    if remaining + num_added == 0:
        return 1.0
    p_switched = (1.0 - p_deleted) * (num_added / (remaining + num_added))
    return p_deleted + p_switched


def change_probability_paper_verbatim(
    num_edges: int, num_deleted: int, num_added: int
) -> float:
    """Eq. 3 exactly as printed in the paper (documented typo; see module doc)."""
    _check_batch(num_edges, num_deleted, num_added)
    p_deleted = num_deleted / num_edges
    remaining = num_edges - num_deleted
    if remaining + num_added == 0:
        return 1.0
    second = (1.0 - p_deleted) * (remaining / (remaining + num_added))
    return p_deleted + second


def survival_probabilities(pc: float, iterations: int) -> List[float]:
    """``[Q(0), Q(1), ..., Q(T)]`` via the recursion of Eq. 6 / Eq. 7.

    ``Q(0) = 1`` (initial labels never change), ``Q(t) = (1 - pc/t) Q(t-1)``.
    """
    if not 0.0 <= pc <= 1.0:
        raise ValueError(f"pc must be in [0, 1], got {pc}")
    check_type(iterations, int, "iterations")
    check_non_negative(iterations, "iterations")
    q = [1.0]
    for t in range(1, iterations + 1):
        q.append(q[-1] * (1.0 - pc / t))
    return q


def expected_updates(
    num_vertices: int, iterations: int, pc: float
) -> float:
    """``η̂ = T|V| - |V| Σ_{t=1..T} Q(t)`` (Eq. 8)."""
    check_type(num_vertices, int, "num_vertices")
    check_non_negative(num_vertices, "num_vertices")
    q = survival_probabilities(pc, iterations)
    return iterations * num_vertices - num_vertices * sum(q[1:])


def best_case_updates(num_vertices: int, iterations: int, pc: float) -> float:
    """Lower bound ``η >= T|V|·pc`` (Eq. 10): all propagation paths length 1."""
    check_non_negative(num_vertices, "num_vertices")
    check_non_negative(iterations, "iterations")
    if not 0.0 <= pc <= 1.0:
        raise ValueError(f"pc must be in [0, 1], got {pc}")
    return iterations * num_vertices * pc


def worst_case_updates(num_vertices: int, iterations: int, pc: float) -> float:
    """Upper bound of Eq. 12: every label chains to the previous iteration.

    ``η <= T|V| - |V| ((1-pc) - (1-pc)^{T+1}) / pc``; for ``pc = 0`` the
    bound degenerates to 0 (nothing changes).
    """
    check_non_negative(num_vertices, "num_vertices")
    check_non_negative(iterations, "iterations")
    if not 0.0 <= pc <= 1.0:
        raise ValueError(f"pc must be in [0, 1], got {pc}")
    if pc == 0.0:
        return 0.0
    # Sum the geometric series directly instead of the closed form
    # ((1-pc) - (1-pc)^{T+1}) / pc: for tiny pc the closed form cancels
    # catastrophically and can dip below the best-case bound (even negative).
    ratio = 1.0 - pc
    geometric_sum = math.fsum(ratio ** t for t in range(1, iterations + 1))
    return iterations * num_vertices - num_vertices * geometric_sum
