"""Counter-based randomness for label propagation (scalar + vectorised).

Every pick in Algorithm 1 and every repick/lottery in Algorithm 2 is a pure
function of ``(seed, vertex, iteration, epoch)``.  This module implements
that function once with SplitMix64 mixing, in two exactly-matching forms:

* scalar Python integers — used by the reference propagator, the incremental
  Correction Propagation, and the distributed vertex programs;
* vectorised numpy ``uint64`` — used by the fast propagator.

Because both forms compute the *same* bits, all engines produce identical
label states for a given seed, which the test suite asserts directly.  The
``epoch`` field gives the incremental algorithm fresh randomness for a
repicked slot without disturbing any other slot — the literal version of the
paper's "pretend we used the same series of random numbers" argument
(Section IV-A).

SplitMix64 passes BigCrush; the modulo reduction introduces a bias below
``range / 2^64``, which is irrelevant at graph scale (the statistical tests
in the suite bound uniformity empirically).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "mix64",
    "mix64_array",
    "slot_hash",
    "draw_src_index",
    "draw_position",
    "draw_keep_uniform",
    "slot_hash_array",
    "slot_hash_flex",
    "draw_src_index_array",
    "draw_position_array",
    "draw_position_flex",
    "draw_keep_uniform_array",
]

_MASK = (1 << 64) - 1

# Domain-separation constants (random 64-bit primes / odd constants).
_C_VERTEX = 0xA24BAED4963EE407
_C_ITER = 0x9FB21C651E98DF25
_C_EPOCH = 0xD6E8FEB86659FD93
_C_SRC = 0x2545F4914F6CDD1D
_C_POS = 0x27220A95FE1EFAAD
_C_KEEP = 0x3C79AC492BA7B653

_TWO64 = float(1 << 64)


def mix64(x: int) -> int:
    """SplitMix64 finaliser: a strong 64-bit mixing permutation."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def slot_hash(seed: int, vertex: int, iteration: int, epoch: int) -> int:
    """The base hash of a (vertex, iteration, epoch) slot under ``seed``."""
    h = mix64((seed & _MASK) ^ ((vertex * _C_VERTEX) & _MASK))
    h = mix64(h ^ ((iteration * _C_ITER) & _MASK))
    h = mix64(h ^ ((epoch * _C_EPOCH) & _MASK))
    return h


def draw_src_index(h: int, degree: int) -> int:
    """Index of the chosen source neighbour, uniform in [0, degree)."""
    if degree <= 0:
        raise ValueError(f"degree must be positive, got {degree}")
    return mix64(h ^ _C_SRC) % degree


def draw_position(h: int, iteration: int) -> int:
    """The chosen position, uniform in [0, iteration) (i.e. pos <= t-1)."""
    if iteration <= 0:
        raise ValueError(f"iteration must be positive, got {iteration}")
    return mix64(h ^ _C_POS) % iteration


def draw_keep_uniform(h: int) -> float:
    """A uniform float in [0, 1) for the Category-3 keep lottery."""
    return mix64(h ^ _C_KEEP) / _TWO64


# ----------------------------------------------------------------------
# Vectorised forms (numpy uint64) — bit-identical to the scalar forms.
# ----------------------------------------------------------------------

_NP_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def _np_mix64(x: np.ndarray) -> np.ndarray:
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & _NP_MASK
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _NP_MASK
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _NP_MASK
    return x ^ (x >> np.uint64(31))


def mix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`mix64` over a ``uint64`` array (same bits).

    Public entry point for callers that compose their own hash chains —
    the vectorised partitioners and the columnar BSP programs' tie-breaks
    both reduce to one :func:`mix64` over an id array.
    """
    return _np_mix64(np.asarray(x, dtype=np.uint64))


def slot_hash_array(
    seed: int, vertices: np.ndarray, iteration: int, epoch: int = 0
) -> np.ndarray:
    """Vectorised :func:`slot_hash` over an array of vertex ids."""
    v = vertices.astype(np.uint64, copy=False)
    h = _np_mix64(np.uint64(seed & _MASK) ^ (v * np.uint64(_C_VERTEX)))
    h = _np_mix64(h ^ np.uint64((iteration * _C_ITER) & _MASK))
    h = _np_mix64(h ^ np.uint64((epoch * _C_EPOCH) & _MASK))
    return h


def slot_hash_flex(seed, vertices, iterations, epochs) -> np.ndarray:
    """Fully-broadcasting :func:`slot_hash`: every argument may be an array.

    Unlike :func:`slot_hash_array` (scalar iteration/epoch), this accepts
    per-element iteration and epoch arrays — what the incremental engine
    needs, where each repicked slot sits at its own ``(v, t, epoch)`` — and
    an *array* seed, which lets the Theorem-5 keep lottery chain two hashes
    (``slot_hash(slot_hash(seed, v, t, 0), v, t, batch_epoch)``) without
    leaving numpy.  uint64 wraparound matches the scalar ``& _MASK`` exactly.
    """
    if isinstance(seed, (int, np.integer)):
        seed = np.uint64(int(seed) & _MASK)
    v = np.asarray(vertices).astype(np.uint64, copy=False)
    it = np.asarray(iterations).astype(np.uint64, copy=False)
    ep = np.asarray(epochs).astype(np.uint64, copy=False)
    h = _np_mix64(seed ^ (v * np.uint64(_C_VERTEX)))
    h = _np_mix64(h ^ (it * np.uint64(_C_ITER)))
    h = _np_mix64(h ^ (ep * np.uint64(_C_EPOCH)))
    return h


def draw_keep_uniform_array(h: np.ndarray) -> np.ndarray:
    """Vectorised :func:`draw_keep_uniform` (same float64 bits)."""
    return _np_mix64(h ^ np.uint64(_C_KEEP)) / _TWO64


def draw_src_index_array(h: np.ndarray, degrees: np.ndarray) -> np.ndarray:
    """Vectorised :func:`draw_src_index`; degree-0 entries yield index 0.

    Callers mask degree-0 vertices out separately (they take the fallback
    label); the placeholder index keeps the computation branch-free.
    """
    safe = np.maximum(degrees.astype(np.uint64, copy=False), np.uint64(1))
    return (_np_mix64(h ^ np.uint64(_C_SRC)) % safe).astype(np.int64)


def draw_position_array(h: np.ndarray, iteration: int) -> np.ndarray:
    """Vectorised :func:`draw_position`."""
    if iteration <= 0:
        raise ValueError(f"iteration must be positive, got {iteration}")
    return (_np_mix64(h ^ np.uint64(_C_POS)) % np.uint64(iteration)).astype(np.int64)


def draw_position_flex(h: np.ndarray, iterations: np.ndarray) -> np.ndarray:
    """:func:`draw_position` with a per-element iteration array.

    Zero iterations are clamped to 1 as a branch-free placeholder (position
    draws at ``t = 0`` never occur; callers never read those entries).
    """
    safe = np.maximum(np.asarray(iterations).astype(np.uint64, copy=False), np.uint64(1))
    return (_np_mix64(h ^ np.uint64(_C_POS)) % safe).astype(np.int64)


def draw_src_pos(
    seed: int, vertex: int, iteration: int, epoch: int, degree: int
) -> Tuple[int, int]:
    """Convenience: the (source index, position) pair for a slot."""
    h = slot_hash(seed, vertex, iteration, epoch)
    return draw_src_index(h, degree), draw_position(h, iteration)
