"""Post-processing: from label sequences to overlapping communities.

Section III-B of the paper.  rSLPA's uniform picking leaves each community
agreeing on a *distribution* of labels rather than one frequent label, so
instead of SLPA's per-vertex thresholding:

1. every edge gets a weight ``w_ij = P(l_i = l_j)`` — the probability two
   independent uniform draws from ``L_i`` and ``L_j`` collide;
2. the strong threshold ``τ1`` filters edges; connected components with at
   least two vertices become communities.  ``τ1`` is chosen to maximise the
   information entropy of relative community sizes (Eq. 1);
3. the weak threshold ``τ2 = min_i max_j w_ij`` (Eq. 2) attaches each
   remaining isolated vertex to the communities of its strong neighbours —
   attachment to several communities is what creates *overlap*.

The τ1 sweep is implemented with a union-find that adds edges in descending
weight order and maintains the size histogram / entropy incrementally, so
sweeping the full candidate grid costs ``O(E α(V) + #steps)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import math

from repro.core.communities import Cover
from repro.graph.adjacency import Graph
from repro.utils.validation import check_positive

__all__ = [
    "sequence_similarity",
    "edge_weights",
    "weak_threshold",
    "DisjointSetEntropy",
    "sweep_tau1",
    "extract_communities",
    "PostprocessResult",
]

Edge = Tuple[int, int]


def sequence_similarity(seq_a: Sequence[int], seq_b: Sequence[int]) -> float:
    """``P(l_a = l_b)`` for independent uniform draws from two sequences.

    >>> sequence_similarity([1, 1, 2], [1, 2, 2])
    0.4444444444444444
    """
    if not seq_a or not seq_b:
        raise ValueError("label sequences must be non-empty")
    counts_a = Counter(seq_a)
    counts_b = Counter(seq_b)
    if len(counts_a) > len(counts_b):
        counts_a, counts_b = counts_b, counts_a
    hits = sum(count * counts_b.get(label, 0) for label, count in counts_a.items())
    return hits / (len(seq_a) * len(seq_b))


def edge_weights(
    graph: Graph, sequences: Mapping[int, Sequence[int]]
) -> Dict[Edge, float]:
    """Similarity weight for every edge of ``graph``.

    ``sequences`` maps vertex -> label sequence (e.g. ``LabelState.labels``).
    Label histograms are built once per vertex (not once per edge), which is
    what keeps the O(|E|) post-processing pass affordable at web-graph scale.
    """
    counters: Dict[int, Counter] = {}
    lengths: Dict[int, int] = {}
    for v in graph.vertices():
        seq = sequences[v]
        if not seq:
            raise ValueError(f"vertex {v} has an empty label sequence")
        counters[v] = Counter(seq)
        lengths[v] = len(seq)
    weights: Dict[Edge, float] = {}
    for u, v in graph.edges():
        counts_u, counts_v = counters[u], counters[v]
        if len(counts_u) > len(counts_v):
            counts_u, counts_v = counts_v, counts_u
        hits = sum(
            count * counts_v.get(label, 0) for label, count in counts_u.items()
        )
        weights[(u, v)] = hits / (lengths[u] * lengths[v])
    return weights


def weak_threshold(graph: Graph, weights: Mapping[Edge, float]) -> float:
    """``τ2 = min_i max_j w_ij`` (Eq. 2) over vertices with neighbours.

    Degree-0 vertices have no incident weight and are excluded (they can
    never be attached anyway).  Returns 0.0 for an edgeless graph.
    """
    best_per_vertex: Dict[int, float] = {}
    for (u, v), w in weights.items():
        if w > best_per_vertex.get(u, -1.0):
            best_per_vertex[u] = w
        if w > best_per_vertex.get(v, -1.0):
            best_per_vertex[v] = w
    if not best_per_vertex:
        return 0.0
    return min(best_per_vertex.values())


class DisjointSetEntropy:
    """Union-find tracking the Eq. 1 entropy of components with size >= 2.

    Components of size 1 are "isolated vertices" in the paper's terminology
    and contribute nothing.  ``entropy`` is maintained incrementally under
    unions: O(1) updates on top of near-O(1) DSU finds.
    """

    def __init__(self, vertices: Iterable[int], num_vertices: Optional[int] = None):
        self.parent: Dict[int, int] = {v: v for v in vertices}
        self.size: Dict[int, int] = {v: 1 for v in self.parent}
        self.n = num_vertices if num_vertices is not None else len(self.parent)
        check_positive(self.n, "num_vertices")
        self.entropy = 0.0
        self.num_components = len(self.parent)  # including singletons

    def _term(self, size: int) -> float:
        if size < 2:
            return 0.0
        p = size / self.n
        return -p * math.log(p)

    def find(self, v: int) -> int:
        root = v
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[v] != root:  # path compression
            self.parent[v], v = root, self.parent[v]
        return root

    def union(self, u: int, v: int) -> bool:
        """Merge the components of ``u`` and ``v``; returns True if merged."""
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return False
        if self.size[ru] < self.size[rv]:
            ru, rv = rv, ru
        self.entropy -= self._term(self.size[ru]) + self._term(self.size[rv])
        self.size[ru] += self.size[rv]
        self.parent[rv] = ru
        self.entropy += self._term(self.size[ru])
        self.num_components -= 1
        return True

    def components(self, min_size: int = 1) -> List[Set[int]]:
        """Materialise all components with at least ``min_size`` members."""
        groups: Dict[int, Set[int]] = {}
        for v in self.parent:
            groups.setdefault(self.find(v), set()).add(v)
        return [g for g in groups.values() if len(g) >= min_size]


@dataclass
class PostprocessResult:
    """Everything the post-processing stage decided.

    ``entropy_curve`` holds the swept (τ1 candidate, entropy) pairs so the
    τ-selection ablation can plot the landscape.
    """

    cover: Cover
    tau1: float
    tau2: float
    entropy: float
    weights: Dict[Edge, float] = field(repr=False, default_factory=dict)
    entropy_curve: List[Tuple[float, float]] = field(repr=False, default_factory=list)
    num_strong_communities: int = 0
    num_attached_vertices: int = 0


def sweep_tau1(
    graph: Graph,
    weights: Mapping[Edge, float],
    tau2: float,
    step: float = 0.001,
) -> Tuple[float, float, List[Tuple[float, float]]]:
    """Find ``argmax_τ1 entropy`` over the grid ``[τ2, max w]`` (Eq. 1).

    Scans thresholds *descending* while adding edges of weight >= τ to a
    DSU, so the whole sweep performs each union exactly once.  Returns
    ``(tau1, best_entropy, curve)``; ties prefer the **larger** τ1 (finer
    communities carry at least as much information).
    """
    check_positive(step, "step")
    if not weights:
        return tau2, 0.0, []
    sorted_edges = sorted(weights.items(), key=lambda kv: -kv[1])
    max_w = sorted_edges[0][1]
    if max_w < tau2:
        return tau2, 0.0, []
    dsu = DisjointSetEntropy(graph.vertices(), graph.num_vertices)

    # Descending grid: max_w, max_w - step, ..., down to tau2 inclusive.
    num_steps = max(0, int(math.floor((max_w - tau2) / step + 1e-9)))
    grid = [max_w - k * step for k in range(num_steps + 1)]
    if grid[-1] > tau2 + 1e-12:
        grid.append(tau2)

    curve: List[Tuple[float, float]] = []
    best_tau, best_entropy = grid[0], -1.0
    edge_idx = 0
    for tau in grid:
        while edge_idx < len(sorted_edges) and sorted_edges[edge_idx][1] >= tau - 1e-12:
            (u, v), _w = sorted_edges[edge_idx]
            dsu.union(u, v)
            edge_idx += 1
        curve.append((tau, dsu.entropy))
        if dsu.entropy > best_entropy + 1e-12:
            best_tau, best_entropy = tau, dsu.entropy
    return best_tau, best_entropy, curve


def extract_communities(
    graph: Graph,
    sequences: Mapping[int, Sequence[int]],
    step: float = 0.001,
    tau1: Optional[float] = None,
    tau2: Optional[float] = None,
) -> PostprocessResult:
    """Full post-processing pipeline: weights -> τ2 -> τ1 sweep -> cover.

    ``tau1``/``tau2`` may be pinned (for ablations); by default they follow
    Eqs. 1 and 2.  Returns a :class:`PostprocessResult` whose cover contains
    the strong components (size >= 2) with weakly-attached isolated
    vertices merged in.
    """
    weights = edge_weights(graph, sequences)
    resolved_tau2 = weak_threshold(graph, weights) if tau2 is None else tau2
    if tau1 is None:
        resolved_tau1, entropy, curve = sweep_tau1(graph, weights, resolved_tau2, step)
    else:
        resolved_tau1, curve = tau1, []
        entropy = float("nan")

    # Strong pass: components of the τ1-filtered graph.
    dsu = DisjointSetEntropy(graph.vertices(), graph.num_vertices)
    for (u, v), w in weights.items():
        if w >= resolved_tau1 - 1e-12:
            dsu.union(u, v)
    strong_components = dsu.components(min_size=2)
    if tau1 is not None:
        entropy = sum(
            -(len(c) / graph.num_vertices) * math.log(len(c) / graph.num_vertices)
            for c in strong_components
        )

    strong_members: Set[int] = set()
    community_of: Dict[int, int] = {}
    communities: List[Set[int]] = []
    for cid, component in enumerate(strong_components):
        communities.append(set(component))
        strong_members.update(component)
        for v in component:
            community_of[v] = cid

    # Weak pass: attach isolated vertices through τ2 (Eq. 2); attachment to
    # several communities produces overlap.
    attached = 0
    for v in graph.vertices():
        if v in strong_members:
            continue
        targets: Set[int] = set()
        for u in graph.neighbors_view(v):
            if u not in strong_members:
                continue
            edge = (u, v) if u < v else (v, u)
            if weights[edge] >= resolved_tau2 - 1e-12:
                targets.add(community_of[u])
        if targets:
            attached += 1
            for cid in targets:
                communities[cid].add(v)

    return PostprocessResult(
        cover=Cover(communities),
        tau1=resolved_tau1,
        tau2=resolved_tau2,
        entropy=entropy,
        weights=dict(weights),
        entropy_curve=curve,
        num_strong_communities=len(strong_components),
        num_attached_vertices=attached,
    )
