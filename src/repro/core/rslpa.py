"""rSLPA randomized label propagation — reference engine (Algorithm 1).

In iteration ``t`` every vertex ``v_i``:

1. uniformly picks a source neighbour ``src_i ∈ N_i`` and a position
   ``pos_i ∈ {0, ..., t-1}`` (both via the counter-based slot hash, so every
   backend agrees on the pick);
2. appends ``L_src[pos]`` to its own sequence, and the reverse record
   ``(i, t)`` is registered at ``(src, pos)``.

This is the pure-Python engine that maintains full provenance and reverse
records, which is what the incremental Correction Propagation (Algorithm 2)
needs.  For large static runs use :class:`repro.core.fast.FastPropagator`,
which produces bit-identical output without records.

Degree-0 convention (the paper leaves it unspecified): a vertex with no
neighbours re-appends its own initial label with sentinel provenance; it can
never join a community, matching the post-processing's treatment of
isolated vertices.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.labels import NO_SOURCE, LabelState
from repro.core.randomness import draw_position, draw_src_index, slot_hash
from repro.graph.adjacency import Graph
from repro.utils.validation import check_non_negative, check_type

__all__ = ["ReferencePropagator"]


class ReferencePropagator:
    """Runs Algorithm 1 and owns the resulting :class:`LabelState`.

    Parameters
    ----------
    graph:
        The (live) graph to propagate on.  The propagator does not copy it;
        the owner (usually :class:`repro.core.detector.RSLPADetector`)
        coordinates mutation.
    seed:
        Seed of the counter-based randomness.
    """

    def __init__(self, graph: Graph, seed: int = 0):
        check_type(seed, int, "seed")
        self.graph = graph
        self.seed = seed
        self.state = LabelState()
        self.state.init_vertices(graph.vertices())
        # Sorted adjacency cache: pick index -> neighbour must be stable and
        # identical across engines, so everything indexes sorted neighbour
        # lists.  Invalidated per vertex by the incremental module.
        self._sorted_nbrs: Dict[int, List[int]] = {}

    @classmethod
    def from_state(cls, graph: Graph, seed: int, state: LabelState) -> "ReferencePropagator":
        """Adopt an existing label state (loaded from disk, or exported by
        the fast engine) so propagation/incremental updating can continue.

        The state must cover exactly the graph's vertices; it is validated
        against the graph before adoption.
        """
        if set(state.vertices()) != set(graph.vertices()):
            raise ValueError("label state vertices do not match the graph")
        state.validate(graph)
        propagator = cls.__new__(cls)
        propagator.graph = graph
        propagator.seed = check_type(seed, int, "seed")
        propagator.state = state
        propagator._sorted_nbrs = {}
        return propagator

    # ------------------------------------------------------------------
    # Adjacency cache
    # ------------------------------------------------------------------
    def sorted_neighbors(self, v: int) -> List[int]:
        """The cached sorted neighbour list of ``v``."""
        cached = self._sorted_nbrs.get(v)
        if cached is None:
            cached = sorted(self.graph.neighbors_view(v))
            self._sorted_nbrs[v] = cached
        return cached

    def invalidate_neighbors(self, v: int) -> None:
        """Drop the adjacency cache of ``v`` (after its edges changed)."""
        self._sorted_nbrs.pop(v, None)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        return self.state.num_iterations

    def propagate(self, iterations: int) -> LabelState:
        """Run ``iterations`` further supersteps of Algorithm 1.

        May be called repeatedly; iteration indices continue where the
        previous call stopped (label sequences just keep growing, exactly as
        in the paper where T is a tunable horizon).
        """
        check_type(iterations, int, "iterations")
        check_non_negative(iterations, "iterations")
        state = self.state
        labels = state.labels
        for _ in range(iterations):
            t = state.begin_iteration()
            for v in labels:
                nbrs = self.sorted_neighbors(v)
                degree = len(nbrs)
                if degree == 0:
                    state.append_pick(v, labels[v][0], NO_SOURCE, NO_SOURCE)
                    continue
                h = slot_hash(self.seed, v, t, 0)
                src = nbrs[draw_src_index(h, degree)]
                pos = draw_position(h, t)
                # pos < t, so labels[src][pos] was finalised in an earlier
                # iteration: a single in-order pass is safe (appends never
                # touch earlier entries).
                state.append_pick(v, labels[src][pos], src, pos)
        return state

    # ------------------------------------------------------------------
    # Vertex lifecycle (used by the incremental module)
    # ------------------------------------------------------------------
    def add_vertex_state(self, v: int) -> None:
        """Initialise state for a vertex added after propagation started.

        The new vertex gets its initial label plus one fallback slot per
        completed iteration; the incremental algorithm then repicks every
        slot against the vertex's actual neighbours (Section IV premises:
        a new vertex behaves like an old vertex whose previous neighbours
        were all removed).
        """
        if self.state.has_vertex(v):
            raise ValueError(f"vertex {v} already has label state")
        self.state.init_vertex(v)
        for _ in range(self.state.num_iterations):
            self.state.labels[v].append(v)
            self.state.srcs[v].append(NO_SOURCE)
            self.state.poss[v].append(NO_SOURCE)
            self.state.epochs[v].append(0)
        self.invalidate_neighbors(v)

    def drop_vertex_state(self, v: int) -> None:
        """Remove all state of a deleted vertex (sources must be detached)."""
        self.state.drop_vertex(v)
        self.invalidate_neighbors(v)

    def __repr__(self) -> str:
        return (
            f"ReferencePropagator(seed={self.seed}, T={self.num_iterations}, "
            f"graph={self.graph!r})"
        )
