"""Vectorised Correction Propagation — array-backed Algorithm 2.

:class:`FastCorrectionPropagator` repairs an
:class:`~repro.core.labels_array.ArrayLabelState` after an edit batch with
the same three-phase structure as the reference
:class:`~repro.core.incremental.CorrectionPropagator`, but each phase is a
handful of numpy passes instead of per-slot Python loops:

1. **Classification** — every touched ``(v, t)`` slot is sorted into the
   paper's Categories 1–3 at once: deleted-source slots via one
   ``np.isin`` over ``(vertex, source)`` pair keys, Theorem-5 keep
   lotteries via the broadcasting counter-hash kernels (bit-identical to
   the scalar draws the reference engine makes).
2. **Detach + pre-draw** — all scheduled repicks drop their reverse
   records through the state's O(1) record handles, then every repick's
   hash, candidate, position, epoch, and provenance is drawn and scattered
   in ONE vectorised pass (draws depend only on ``(v, t, epoch)``, never
   on the cascade).
3. **Drain** — the cascade runs one iteration level at a time: arrived
   corrections and the level's repick value gathers are batched
   gather/scatters (upstream rows are final by then), and one notification
   query per level fans out through the CSR-style reverse index grouped by
   destination level.

Total per-batch cost is O(η) array work (plus O(batch) Python for the edit
bookkeeping itself), and the result is **bit-identical** to the reference
corrector for every seed, batch, and batch epoch — labels, provenance,
epochs, and reports all match, which the test suite asserts slot for slot.

The only contract difference: vertex ids must stay contiguous ``0..n-1``
(new vertices extend the range; deleted ids may be re-inserted).  Graphs
with arbitrary ids keep using the reference corrector.
"""

from __future__ import annotations

from itertools import chain
from typing import List, Tuple

import numpy as np

from repro.core.fast import FastPropagator
from repro.core.incremental import UpdateReport
from repro.core.labels import NO_SOURCE
from repro.core.labels_array import ArrayLabelState
from repro.core.randomness import (
    draw_keep_uniform_array,
    draw_position_flex,
    draw_src_index_array,
    slot_hash_flex,
)
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch

__all__ = ["FastCorrectionPropagator"]

# (vertex, neighbour) pairs packed into one int64 key for the deleted-source
# membership test; vertex ids are far below 2^31 so the halves cannot clash.
_PAIR = np.int64(1) << np.int64(32)

# Per-level pending notification buffers: lists of (vertices, values).
_Pending = List[List[Tuple[np.ndarray, np.ndarray]]]


def _sorted_pool(groups, counts: np.ndarray, total: int, n: int) -> np.ndarray:
    """Concatenate per-vertex neighbour groups and sort within each group.

    The :func:`repro.graph.csr.build_csr_arrays` idiom on a vertex subset:
    one C-level fromiter over chained sets, one combined-key
    (``group * n + neighbour``) sort — no per-vertex Python sorting.
    """
    if total == 0:
        return np.empty(0, dtype=np.int64)
    flat = np.fromiter(chain.from_iterable(groups), dtype=np.int64, count=total)
    group_ids = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    key = group_ids * np.int64(n) + flat
    key.sort()
    return key % np.int64(n)


class FastCorrectionPropagator:
    """Applies edit batches to an :class:`ArrayLabelState` in place.

    Drop-in counterpart of :class:`~repro.core.incremental.CorrectionPropagator`
    (same ``apply_batch`` / ``remove_vertex`` / ``batch_epoch`` surface, same
    :class:`UpdateReport` numbers) over the array substrate.  Typical
    hand-off from a fast static run::

        fast = FastPropagator(CSRGraph.from_graph(graph), seed=7)
        fast.propagate(200)
        corrector = FastCorrectionPropagator(graph, fast.to_array_state(), 7)
        corrector.apply_batch(batch)
    """

    def __init__(
        self,
        graph: Graph,
        state: ArrayLabelState,
        seed: int,
        track_slots: bool = True,
    ):
        if set(graph.vertices()) != set(state.vertices()):
            raise ValueError("label state vertices do not match the graph")
        self.graph = graph
        self.state = state
        self.seed = seed
        self.batch_epoch = 0
        self.track_slots = track_slots

    @classmethod
    def from_fast_propagator(
        cls,
        propagator: FastPropagator,
        graph: Graph,
        track_slots: bool = True,
    ) -> "FastCorrectionPropagator":
        """Adopt a finished static run: export its array state and pair it
        with the mutable graph that future batches will edit."""
        return cls(graph, propagator.to_array_state(), propagator.seed, track_slots)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def apply_batch(self, batch: EditBatch) -> UpdateReport:
        """Apply a validated edit batch: mutate graph, repair label state.

        Same semantics as the reference corrector; new endpoints must keep
        the id range contiguous (checked before anything mutates).
        """
        batch.validate_against(self.graph)
        state = self.state
        new_vertices = sorted(
            {e for edge in batch.insertions for e in edge if not self.graph.has_vertex(e)}
        )
        self._check_new_ids(new_vertices)
        if state.needs_reindex():
            state.reindex()
        self.batch_epoch += 1
        report = UpdateReport(
            batch_size=batch.size,
            num_inserted=len(batch.insertions),
            num_deleted=len(batch.deletions),
            track_slots=self.track_slots,
        )

        added = batch.added_neighbors()
        removed = batch.removed_neighbors()

        # --- 1. mutate the graph; create/resurrect endpoint columns -----
        for v in new_vertices:
            self.graph.add_vertex(v)
        for u, v in batch.deletions:
            self.graph.remove_edge(u, v)
        for u, v in batch.insertions:
            self.graph.add_edge(u, v)
        state.add_vertices(new_vertices)

        t_max = state.num_iterations
        touched = sorted(set(added) | set(removed))
        if not touched or t_max == 0:
            return report
        tv = np.array(touched, dtype=np.int64)
        m = len(touched)

        # Sorted candidate pools of the touched vertices, as one mini-CSR
        # each: current neighbours and batch-added neighbours.  Built with
        # the combined-key-sort idiom (one fromiter + one sort, no
        # per-vertex Python sorting).
        n_now = state.num_columns
        pool_counts = np.fromiter(
            (self.graph.degree(v) for v in touched), dtype=np.int64, count=m
        )
        pool_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(pool_counts, out=pool_indptr[1:])
        pool_flat = _sorted_pool(
            (self.graph.neighbors_view(v) for v in touched),
            pool_counts,
            int(pool_indptr[-1]),
            n_now,
        )
        a_counts = np.fromiter(
            (len(added.get(v, ())) for v in touched), dtype=np.int64, count=m
        )
        a_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(a_counts, out=a_indptr[1:])
        a_flat = _sorted_pool(
            (added.get(v, ()) for v in touched),
            a_counts,
            int(a_indptr[-1]),
            n_now,
        )

        # --- 2. vectorised Category 1-3 classification ------------------
        # (T, m) provenance snapshot of the touched columns, rows 1..T.
        src_sub = state.srcs[1:, tv]
        no_src = src_sub == NO_SOURCE
        if batch.deletions:
            ndel = len(batch.deletions)
            du = np.fromiter((e[0] for e in batch.deletions), np.int64, count=ndel)
            dv = np.fromiter((e[1] for e in batch.deletions), np.int64, count=ndel)
            removed_keys = np.concatenate([du * _PAIR + dv, dv * _PAIR + du])
            deleted_src = np.isin(tv[np.newaxis, :] * _PAIR + src_sub, removed_keys)
        else:
            deleted_src = np.zeros_like(no_src)
        gained = (a_counts > 0)[np.newaxis, :]
        repick_all_mask = deleted_src | (no_src & gained)
        lottery_mask = ~no_src & ~deleted_src & gained
        report.keep_lotteries = int(np.count_nonzero(lottery_mask))

        # Theorem-5 keep lotteries for Category-3 slots with a surviving
        # source: chained counter hash, fresh per batch epoch.
        lrow, lcol = np.nonzero(lottery_mask)
        if lrow.size:
            lts = lrow + 1
            lvs = tv[lcol]
            h = slot_hash_flex(
                slot_hash_flex(self.seed, lvs, lts, 0), lvs, lts, self.batch_epoch
            )
            n_added = a_counts[lcol]
            n_unchanged = (pool_counts - a_counts)[lcol]
            switch = draw_keep_uniform_array(h) < n_added / (n_unchanged + n_added)
            report.lottery_switches = int(np.count_nonzero(switch))
            rep_add_t = lts[switch]
            rep_add_col = lcol[switch]
        else:
            rep_add_t = np.empty(0, dtype=np.int64)
            rep_add_col = np.empty(0, dtype=np.int64)

        rep_all_row, rep_all_col = np.nonzero(repick_all_mask)
        rep_all_t = rep_all_row + 1

        # Unify both repick families into one level-sorted slot list; each
        # slot carries its candidate range in the concatenated pool (the
        # added pool sits after the all-neighbours pool).
        cand_flat = np.concatenate([pool_flat, a_flat])
        rp_v = np.concatenate([tv[rep_all_col], tv[rep_add_col]])
        rp_t = np.concatenate([rep_all_t, rep_add_t])
        rp_off = np.concatenate(
            [pool_indptr[rep_all_col], a_indptr[rep_add_col] + len(pool_flat)]
        )
        rp_cnt = np.concatenate([pool_counts[rep_all_col], a_counts[rep_add_col]])
        order = np.argsort(rp_t, kind="stable")
        rp_v, rp_t = rp_v[order], rp_t[order]
        rp_off, rp_cnt = rp_off[order], rp_cnt[order]

        # --- 3. detach every slot scheduled for a repick, then pre-draw -
        # Hashes, candidate indices, positions, epochs, and provenance are
        # all independent of the cascade (only the label *value* gather
        # must read post-correction upstream rows), so the whole repick
        # schedule is drawn and scattered in one vectorised pass.
        report.repicked += len(rp_v)
        if rp_v.size:
            state.detach_slots(rp_v, rp_t)
            epochs_new = state.epochs[rp_t, rp_v] + 1
            state.epochs[rp_t, rp_v] = epochs_new
            h = slot_hash_flex(self.seed, rp_v, rp_t, epochs_new)
            rp_idx = draw_src_index_array(h, rp_cnt)
            rp_pos = draw_position_flex(h, rp_t)
            has_mask = rp_cnt > 0
            rp_src = np.full(len(rp_v), NO_SOURCE, dtype=np.int64)
            rp_src[has_mask] = cand_flat[rp_off[has_mask] + rp_idx[has_mask]]
            rp_pos = np.where(has_mask, rp_pos, np.int64(NO_SOURCE))
            state.srcs[rp_t, rp_v] = rp_src
            state.poss[rp_t, rp_v] = rp_pos
            rp_fallback = state.labels[0, rp_v]  # isolated slots: own label
            report.note_touched_pairs(rp_v, rp_t)
            level_bounds = np.searchsorted(rp_t, np.arange(1, t_max + 2))

        # --- 4. drain: cascade + repick value gathers, level by level ---
        pending: _Pending = [[] for _ in range(t_max + 1)]
        for t in range(1, t_max + 1):
            changed_vs: List[np.ndarray] = []
            changed_vals: List[np.ndarray] = []
            bufs = pending[t]
            if bufs:
                av, avals = (
                    bufs[0]
                    if len(bufs) == 1
                    else (
                        np.concatenate([b[0] for b in bufs]),
                        np.concatenate([b[1] for b in bufs]),
                    )
                )
                report.cascade_corrections += len(av)
                changed = state.labels[t, av] != avals
                if changed.any():
                    cv = av[changed]
                    cvals = avals[changed]
                    state.labels[t, cv] = cvals
                    report.value_changes += len(cv)
                    report.note_touched_many(cv, t)
                    changed_vs.append(cv)
                    changed_vals.append(cvals)
            if rp_v.size:
                lo, hi = level_bounds[t - 1], level_bounds[t]
                if hi > lo:
                    rv = rp_v[lo:hi]
                    new_labels = rp_fallback[lo:hi].copy()
                    live = np.nonzero(has_mask[lo:hi])[0]
                    if live.size:
                        new_labels[live] = state.labels[
                            rp_pos[lo:hi][live], rp_src[lo:hi][live]
                        ]
                    old_labels = state.labels[t, rv]
                    state.labels[t, rv] = new_labels
                    changed = new_labels != old_labels
                    if changed.any():
                        report.value_changes += int(np.count_nonzero(changed))
                        changed_vs.append(rv[changed])
                        changed_vals.append(new_labels[changed])
            if changed_vs:
                self._notify(
                    np.concatenate(changed_vs)
                    if len(changed_vs) > 1
                    else changed_vs[0],
                    t,
                    np.concatenate(changed_vals)
                    if len(changed_vals) > 1
                    else changed_vals[0],
                    pending,
                )

        # --- 5. register the new reverse records (batch-end flush) ------
        # Safe to defer: a record created this batch points a receiver at a
        # level the drain has already passed, so no in-batch query needs it.
        if rp_v.size:
            state.register_slots(
                rp_src[has_mask], rp_pos[has_mask], rp_v[has_mask], rp_t[has_mask]
            )
        return report

    def remove_vertex(self, v: int) -> UpdateReport:
        """Delete a vertex: incident-edge deletion batch, then drop the
        column once nothing references it (same flow as the reference)."""
        if not self.graph.has_vertex(v):
            raise KeyError(f"vertex {v} not in graph")
        incident = EditBatch.build(
            deletions=[(v, u) for u in self.graph.neighbors_view(v)]
        )
        report = (
            self.apply_batch(incident)
            if incident
            else UpdateReport(track_slots=self.track_slots)
        )
        t_max = self.state.num_iterations
        if t_max:
            self.state.detach_slots(
                np.full(t_max, v, dtype=np.int64),
                np.arange(1, t_max + 1, dtype=np.int64),
            )
        self.state.drop_vertex(v)
        self.graph.remove_vertex(v)
        return report

    def accepts(self, batch: EditBatch) -> bool:
        """Whether the array substrate can represent ``batch``'s vertex ids.

        False iff the batch creates vertices that would leave a gap in the
        contiguous ``0..n-1`` range — callers in ``auto`` mode use this to
        downgrade to the reference corrector instead of failing.
        """
        new_vertices = sorted(
            {e for edge in batch.insertions for e in edge if not self.graph.has_vertex(e)}
        )
        try:
            self._check_new_ids(new_vertices)
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_new_ids(self, new_vertices: List[int]) -> None:
        """Reject id gaps before any mutation happens (clean failure)."""
        state = self.state
        ncols = state.num_columns
        fresh = [v for v in new_vertices if v >= ncols]
        if fresh != list(range(ncols, ncols + len(fresh))):
            raise ValueError(
                f"new vertex ids {fresh} do not extend the contiguous range "
                f"0..{ncols - 1}; the array backend cannot represent id gaps "
                "(use the reference corrector)"
            )
        clash = [v for v in new_vertices if v < ncols and state.has_vertex(v)]
        if clash:
            raise ValueError(
                f"vertices {clash[:5]} exist in the label state but not the graph"
            )

    def _notify(
        self,
        v_arr: np.ndarray,
        t: int,
        vals: np.ndarray,
        pending: _Pending,
    ) -> None:
        """Queue corrected values of slots ``(v, t)`` to their receivers,
        grouped by destination level (always strictly ahead of ``t``)."""
        state = self.state
        keys = v_arr * np.int64(state.num_iterations + 1) + np.int64(t)
        owner, tar, k = state.receivers_query(keys)
        if not len(tar):
            return
        if (k <= t).any():
            raise AssertionError(
                f"reverse record at level {t} points backwards in time"
            )
        order = np.argsort(k, kind="stable")
        k_sorted = k[order]
        tar_sorted = tar[order]
        val_sorted = vals[owner[order]]
        levels, starts = np.unique(k_sorted, return_index=True)
        stops = np.append(starts[1:], len(k_sorted))
        for level, lo, hi in zip(levels.tolist(), starts.tolist(), stops.tolist()):
            pending[level].append((tar_sorted[lo:hi], val_sorted[lo:hi]))

    def __repr__(self) -> str:
        return (
            f"FastCorrectionPropagator(seed={self.seed}, "
            f"epoch={self.batch_epoch}, state={self.state!r})"
        )
