"""Observability plane: metrics registry + span flight recorder.

Opt-in via ``ExecutionConfig(trace=True)`` (or ``--trace`` /
``--metrics`` on the CLI); disabled is ``obs is None`` everywhere, so a
run that does not ask for tracing never imports or calls this package.
See DESIGN.md ("Observability") for the ``plane.component.phase``
naming scheme and the overhead budget.

::

    result = detect(graph, execution=ExecutionConfig(num_workers=4,
                                                     trace=True))
    trace = result.trace                  # a TraceResult
    print(trace.summary())                # per-phase table
    trace.save("run.trace.json")          # repro trace run.trace.json
    json.dump(trace.to_chrome_trace(), f) # chrome://tracing / Perfetto
    print(trace.to_prometheus())          # text exposition
"""

from repro.obs.metrics import BUCKET_BOUNDS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    DRIVER,
    Obs,
    Span,
    TraceRecorder,
    TraceResult,
    validate_chrome_trace,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "DRIVER",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "Span",
    "TraceRecorder",
    "TraceResult",
    "validate_chrome_trace",
]
