"""Span-based flight recorder with Chrome-trace export.

The *timeline* half of the observability plane.  A :class:`TraceRecorder`
is a bounded ring buffer of :class:`Span` tuples — name (the
``plane.component.phase`` scheme from DESIGN.md), plane, worker,
superstep, wall-clock start, duration.  Every process that records spans
uses ``time.time_ns()`` as the timebase, so driver and worker spans from
one run align on a common wall clock without any offset negotiation;
per-worker recorders ship their buffers over the existing control pipes
and fold into the driver's recorder at the barrier
(:meth:`TraceRecorder.merge`).

The bounded buffer makes recording safe to leave on for long runs: once
``capacity`` spans are held the oldest are dropped (``dropped`` counts
them), like an aircraft flight recorder — the recent past is always
there, memory use is always bounded.

:class:`TraceResult` is the frozen, serialisable end product attached to
the uniform result objects: phase totals, a human summary table, classic
Prometheus exposition of the merged metrics, a JSON save/load round
trip, and :meth:`TraceResult.to_chrome_trace` — a ``chrome://tracing`` /
Perfetto-loadable event list with one timeline row per worker plus one
for the driver.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, NamedTuple, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Span",
    "TraceRecorder",
    "TraceResult",
    "Obs",
    "validate_chrome_trace",
]

#: Worker id used for driver-side (supervisor-side) spans.
DRIVER = -1


class Span(NamedTuple):
    """One recorded phase: ``plane.component.phase`` name plus tags.

    ``ts_ns`` is an absolute ``time.time_ns()`` wall-clock start (the
    cross-process common timebase); ``dur_ns`` the span length.  Worker
    ``-1`` means the driver/supervisor process.
    """

    name: str
    plane: str
    worker: int
    superstep: int
    ts_ns: int
    dur_ns: int

    @property
    def phase(self) -> str:
        """The trailing component of the dotted name."""
        return self.name.rpartition(".")[2]


class TraceRecorder:
    """Bounded ring buffer of spans (oldest dropped past ``capacity``)."""

    __slots__ = ("_spans", "recorded")

    def __init__(self, capacity: int = 65536):
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._spans)

    def record(
        self,
        name: str,
        start_ns: int,
        *,
        plane: str = "",
        worker: int = DRIVER,
        superstep: int = -1,
        end_ns: int = 0,
    ) -> None:
        """Append one span; ``end_ns`` defaults to *now*.

        The instrumented-site idiom is ``t0 = time.time_ns()`` before the
        phase and one ``record(name, t0, ...)`` call after it — two
        statements, both behind the ``if obs is not None`` gate.
        """
        end = end_ns or time.time_ns()
        self._spans.append(
            Span(name, plane, worker, superstep, start_ns, end - start_ns)
        )
        self.recorded += 1

    def snapshot(self) -> List[Span]:
        """The buffered spans, oldest first (buffer left intact)."""
        return list(self._spans)

    def take(self) -> List[Tuple[Any, ...]]:
        """Drain the buffer as plain tuples (the control-pipe wire form)."""
        spans = [tuple(span) for span in self._spans]
        self._spans.clear()
        return spans

    def merge(self, spans: Iterable[Tuple[Any, ...]]) -> None:
        """Fold shipped span tuples (a worker's :meth:`take`) back in."""
        for raw in spans:
            self._spans.append(Span(*raw))
            self.recorded += 1


class Obs:
    """The per-run observability context: one registry + one recorder.

    ``None`` is the disabled state everywhere — instrumented sites gate
    on ``if obs is not None`` so a run without ``trace=True`` never
    constructs, imports, or calls into this package (the zero-overhead
    contract, enforced by the counting-stub test).
    """

    __slots__ = ("metrics", "trace", "meta")

    def __init__(self, trace_capacity: int = 65536):
        self.metrics = MetricsRegistry()
        self.trace = TraceRecorder(trace_capacity)
        self.meta: Dict[str, Any] = {}

    def result(self, extra_meta: Mapping[str, Any] = None) -> "TraceResult":
        """Freeze the current state into a :class:`TraceResult`."""
        meta = dict(self.meta)
        if extra_meta:
            meta.update(extra_meta)
        return TraceResult(
            spans=tuple(self.trace.snapshot()),
            metrics=self.metrics.snapshot(),
            meta=meta,
            dropped_spans=self.trace.dropped,
        )


@dataclass(frozen=True)
class TraceResult:
    """A frozen recorded run: spans + merged metrics + run metadata."""

    spans: Tuple[Span, ...]
    metrics: Mapping[str, Any] = field(default_factory=dict)
    meta: Mapping[str, Any] = field(default_factory=dict)
    dropped_spans: int = 0

    # -- aggregation ---------------------------------------------------
    def phase_totals(self) -> Dict[str, float]:
        """Total seconds per span name, descending."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.dur_ns / 1e9
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def workers(self) -> List[int]:
        return sorted({span.worker for span in self.spans})

    def summary(self) -> str:
        """A fixed-width per-phase table (count, total, mean, share)."""
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        totals = self.phase_totals()
        grand = sum(totals.values()) or 1.0
        lines = [f"{'span':<32}{'count':>8}{'total (s)':>12}{'mean (ms)':>12}{'share':>8}"]
        for name, total in totals.items():
            count = counts[name]
            lines.append(
                f"{name:<32}{count:>8}{total:>12.4f}"
                f"{1e3 * total / count:>12.3f}{100 * total / grand:>7.1f}%"
            )
        lines.append(
            f"{len(self.spans)} spans over {len(self.workers())} timelines"
            + (f" ({self.dropped_spans} dropped)" if self.dropped_spans else "")
        )
        return "\n".join(lines)

    # -- exports -------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """A ``chrome://tracing`` / Perfetto-loadable event object.

        One process row, one thread row per timeline: tid 0 is the
        driver, tid ``w + 1`` worker ``w``.  Timestamps are microseconds
        relative to the earliest span (Chrome renders absolute epoch
        nanoseconds poorly).
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": self.meta.get("mode", "repro run")},
            }
        ]
        for worker in self.workers():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": worker + 1,
                    "args": {
                        "name": "driver" if worker == DRIVER else f"worker-{worker}"
                    },
                }
            )
        origin_ns = min((span.ts_ns for span in self.spans), default=0)
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.plane or "run",
                    "ph": "X",
                    "pid": 0,
                    "tid": span.worker + 1,
                    "ts": (span.ts_ns - origin_ns) / 1e3,
                    "dur": span.dur_ns / 1e3,
                    "args": {"superstep": span.superstep},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_prometheus(self) -> str:
        """Classic text exposition of the merged metrics snapshot."""
        registry = MetricsRegistry()
        registry.merge(self.metrics)
        return registry.to_prometheus()

    # -- persistence ---------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "meta": dict(self.meta),
            "dropped_spans": self.dropped_spans,
            "metrics": self.metrics,
            "spans": [list(span) for span in self.spans],
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "TraceResult":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != 1:
            raise ValueError(f"{path}: not a repro trace file (version 1)")
        return cls(
            spans=tuple(Span(*raw) for raw in payload.get("spans", [])),
            metrics=payload.get("metrics", {}),
            meta=payload.get("meta", {}),
            dropped_spans=payload.get("dropped_spans", 0),
        )


def validate_chrome_trace(obj: Any) -> None:
    """Schema-check a Chrome-trace export (raises ``ValueError``).

    Dependency-free stand-in for a JSON-Schema validator: checks the
    object layout chrome://tracing and Perfetto actually require —
    a ``traceEvents`` list of events with string ``name``/``ph`` and
    numeric ``pid``/``tid``, plus ``ts``/``dur`` on complete events.
    """
    if not isinstance(obj, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("chrome trace needs a non-empty traceEvents list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key, kinds in (
            ("name", str), ("ph", str), ("pid", (int,)), ("tid", (int,))
        ):
            if not isinstance(event.get(key), kinds):
                raise ValueError(f"traceEvents[{index}] field {key!r} invalid")
        if event["ph"] == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValueError(
                        f"traceEvents[{index}] complete event missing {key!r}"
                    )
            if event["dur"] < 0:
                raise ValueError(f"traceEvents[{index}] negative duration")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"traceEvents[{index}] args must be an object")
