"""Mergeable process-local metrics: counters, gauges, log-bucket histograms.

The registry is the *numbers* half of the observability plane (the
*timeline* half is :mod:`repro.obs.trace`).  Three instrument kinds, all
name-addressed with the ``plane.component.phase`` scheme from DESIGN.md:

* :class:`Counter` — monotonically increasing totals (bytes on the wire,
  segment growths, records shipped);
* :class:`Gauge` — last-written level (ingest queue depth, coalescing
  ratio);
* :class:`Histogram` — value distributions over **fixed log-scale
  buckets** (powers of two from 2^-20 to 2^30), so WAL fsync latencies
  and staleness-at-serve distributions from different workers always
  share bucket boundaries and fold together exactly.

Each process owns its own :class:`MetricsRegistry`; per-worker snapshots
(:meth:`MetricsRegistry.snapshot`, a plain picklable/JSON-able dict)
are folded into the driver's view at the barrier with
:meth:`MetricsRegistry.merge` — counters and histogram buckets add,
gauges take the last write.  :meth:`MetricsRegistry.to_prometheus`
renders the classic text exposition format for scraping or diffing.

Zero-overhead contract: nothing in the hot loops ever *imports* or
*calls* this module unless tracing was requested — instrumented sites
gate on ``if obs is not None`` (see DESIGN.md, "Observability").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Fixed log-scale histogram bucket upper bounds: 2^-20 .. 2^30.  The
#: range covers sub-microsecond timings (seconds) up to gigabyte byte
#: counts with one shared ruler, so snapshots always merge bucket-wise.
BUCKET_BOUNDS = tuple(2.0 ** exp for exp in range(-20, 31))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A value distribution over the fixed log-scale buckets.

    ``buckets[i]`` counts observations ``v`` with ``v <= BUCKET_BOUNDS[i]``
    (and ``> BUCKET_BOUNDS[i-1]``); the final slot is the overflow bucket.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


def _sparse(buckets: List[int]) -> Dict[int, int]:
    return {i: c for i, c in enumerate(buckets) if c}


class MetricsRegistry:
    """Name → instrument map with snapshot/merge and text exposition."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view: picklable for the control pipe, JSON-able
        for :meth:`TraceResult.save`, and the input of :meth:`merge`."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "buckets": _sparse(h.buckets),
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins).  Bucket keys arrive as ints off the
        pipe and as strings after a JSON round trip; both are accepted.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, view in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += view["count"]
            hist.sum += view["sum"]
            for bound in ("min", "max"):
                incoming = view.get(bound)
                if incoming is None:
                    continue
                current = getattr(hist, bound)
                pick = min if bound == "min" else max
                setattr(
                    hist,
                    bound,
                    incoming if current is None else pick(current, incoming),
                )
            for index, count in view.get("buckets", {}).items():
                hist.buckets[int(index)] += count

    # -- exposition -----------------------------------------------------
    def to_prometheus(self, prefix: str = "repro") -> str:
        """Classic Prometheus text exposition of the current state."""
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(gauge.value)}")
        for name, hist in sorted(self._histograms.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for index, bound in enumerate(BUCKET_BOUNDS):
                cumulative += hist.buckets[index]
                if hist.buckets[index]:
                    lines.append(
                        f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                    )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{metric}_sum {_prom_value(hist.sum)}")
            lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(prefix: str, name: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{safe}" if prefix else safe


def _prom_value(value: float) -> str:
    # Integral floats render without the trailing ".0" Prometheus's
    # parser tolerates but humans diffing expositions do not expect.
    if isinstance(value, float) and value.is_integer() and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(value)
