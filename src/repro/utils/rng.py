"""Deterministic, counter-based random number derivation.

Every stochastic choice in this library is drawn from a :class:`random.Random`
stream keyed by a tuple such as ``(seed, vertex, iteration)``.  This gives two
properties the reproduction relies on:

* **Backend equivalence** — the reference (pure Python), vectorised (numpy)
  and distributed (BSP) label-propagation engines consume randomness keyed by
  *what* is being decided, not by *when* the decision executes.  All backends
  therefore produce bit-identical label states for the same seed, regardless
  of partitioning or scheduling order.

* **Incremental stability** — the Correction Propagation algorithm
  (Section IV of the paper) argues correctness by "pretending we used the
  same series of random numbers" on the new graph.  Keyed streams make that
  literal: untouched labels keep their random draws, while repicks derive
  fresh streams via an epoch counter.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Iterator, Tuple

__all__ = ["derive_seed", "derive_rng", "spawn_rng", "RngFactory"]

_HASH_BYTES = 8


def _encode_key(parts: Tuple) -> bytes:
    """Serialise a key tuple into a stable byte string.

    Integers are encoded with an explicit tag and fixed width so that e.g.
    ``(1, 23)`` and ``(12, 3)`` cannot collide; strings are length-prefixed.
    """
    chunks = []
    for part in parts:
        if isinstance(part, bool):  # bool is an int subclass; tag separately
            chunks.append(b"b" + (b"\x01" if part else b"\x00"))
        elif isinstance(part, int):
            chunks.append(b"i" + struct.pack(">Q", part & 0xFFFFFFFFFFFFFFFF))
        elif isinstance(part, str):
            encoded = part.encode("utf-8")
            chunks.append(b"s" + struct.pack(">I", len(encoded)) + encoded)
        elif isinstance(part, bytes):
            chunks.append(b"y" + struct.pack(">I", len(part)) + part)
        elif isinstance(part, float):
            chunks.append(b"f" + struct.pack(">d", part))
        elif part is None:
            chunks.append(b"n")
        else:
            raise TypeError(
                f"unsupported RNG key component {part!r} of type {type(part).__name__}"
            )
    return b"\x1f".join(chunks)


def derive_seed(*key) -> int:
    """Derive a 64-bit seed from an arbitrary key tuple.

    The derivation is a keyed BLAKE2b hash, so seeds are stable across
    processes and Python versions (unlike ``hash()``, which is salted).
    """
    digest = hashlib.blake2b(_encode_key(tuple(key)), digest_size=_HASH_BYTES)
    return int.from_bytes(digest.digest(), "big")


def derive_rng(*key) -> random.Random:
    """Return a fresh :class:`random.Random` seeded from ``key``.

    >>> derive_rng(7, "demo", 3).random() == derive_rng(7, "demo", 3).random()
    True
    """
    return random.Random(derive_seed(*key))


def spawn_rng(rng: random.Random) -> random.Random:
    """Derive an independent child stream from an existing ``rng``."""
    return random.Random(rng.getrandbits(64))


class RngFactory:
    """Factory producing named deterministic random streams under one seed.

    This is the object that algorithm implementations carry around.  It is
    intentionally tiny: the whole point is that the state lives in the *key*,
    not in the factory, so the factory can be freely copied across processes.

    >>> fac = RngFactory(42)
    >>> fac.rng("pick", 3, 1).randrange(10) == RngFactory(42).rng("pick", 3, 1).randrange(10)
    True
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed

    def rng(self, *key) -> random.Random:
        """Return the stream for ``key`` (always freshly seeded)."""
        return derive_rng(self.seed, *key)

    def seed_for(self, *key) -> int:
        """Return the 64-bit derived seed for ``key`` (for numpy generators)."""
        return derive_seed(self.seed, *key)

    def streams(self, name: str, count: int) -> Iterator[random.Random]:
        """Yield ``count`` independent streams ``name/0 .. name/count-1``."""
        for index in range(count):
            yield self.rng(name, index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"

    def __eq__(self, other) -> bool:
        return isinstance(other, RngFactory) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("RngFactory", self.seed))
