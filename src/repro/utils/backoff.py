"""Exponential backoff with deterministic jitter.

Retry loops that back off on a fixed exponential schedule synchronise:
every client that failed together retries together, and the thundering
herd re-collides forever (the classic analysis is AWS's "exponential
backoff and jitter").  The fix is jitter — but naive ``random()`` jitter
would break this library's reproducibility contract, where every test
replays bit-identically.  :class:`JitteredBackoff` squares the two: the
jitter is drawn from a :class:`random.Random` stream derived from a
caller-supplied key through :func:`repro.utils.rng.derive_rng`, so two
retriers with different keys decorrelate while any single retrier
replays the exact same delays run after run.

Users: the TCP transport's worker reconnect
(:class:`repro.distributed.transport.SocketWorkerEndpoint`, keyed by the
engine cookie and worker id) and the replication layer's
:class:`~repro.service.replication.ReplicatedClient` (keyed by the
service seed and request number).
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

from repro.utils.rng import derive_rng

__all__ = ["JitteredBackoff"]


class JitteredBackoff:
    """A bounded exponential backoff schedule with keyed jitter.

    Delay ``i`` (0-based) is ``base * factor**i``, capped at ``max_delay``,
    then scaled by a jitter factor uniform in ``[1 - jitter, 1 + jitter]``
    drawn from the stream derived from ``key``.  ``jitter=0`` recovers the
    deterministic schedule exactly.

    >>> list(JitteredBackoff(0.05, attempts=3, jitter=0.0).delays())
    [0.05, 0.1, 0.2]
    >>> a = list(JitteredBackoff(0.05, attempts=3, key=("x", 1)).delays())
    >>> a == list(JitteredBackoff(0.05, attempts=3, key=("x", 1)).delays())
    True
    """

    def __init__(
        self,
        base: float,
        attempts: int,
        factor: float = 2.0,
        jitter: float = 0.5,
        max_delay: Optional[float] = None,
        key: tuple = (),
    ):
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.base = base
        self.attempts = attempts
        self.factor = factor
        self.jitter = jitter
        self.max_delay = max_delay
        self._rng = derive_rng("backoff", *key)

    def delays(self) -> Iterator[float]:
        """Yield the ``attempts`` jittered delays, in order."""
        delay = self.base
        for _ in range(self.attempts):
            capped = delay if self.max_delay is None else min(delay, self.max_delay)
            if self.jitter:
                capped *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
            yield capped
            delay *= self.factor

    def retry(self, attempt, exceptions=(OSError,)):
        """Call ``attempt()`` until it succeeds, sleeping the schedule between.

        The final failure propagates: ``attempts`` tries means
        ``attempts - 1`` sleeps.  Returns whatever ``attempt`` returns.
        """
        last_delay = None
        for i, delay in enumerate(self.delays()):
            if i:
                time.sleep(last_delay)
            last_delay = delay
            try:
                return attempt()
            except exceptions:
                if i == self.attempts - 1:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover
