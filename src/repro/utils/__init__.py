"""Shared utilities: deterministic RNG derivation and argument validation."""

from repro.utils.rng import RngFactory, derive_rng, derive_seed, spawn_rng
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngFactory",
    "derive_rng",
    "derive_seed",
    "spawn_rng",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
