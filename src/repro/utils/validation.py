"""Small argument-validation helpers shared across the library.

These raise early, with messages that name the offending parameter, so that
misuse surfaces at API boundaries instead of deep inside an algorithm.
"""

from __future__ import annotations

from numbers import Real

__all__ = [
    "check_type",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
]


def check_type(value, types, name: str):
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def check_positive(value, name: str):
    """Raise unless ``value`` is a real number strictly greater than zero."""
    check_type(value, Real, name)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value, name: str):
    """Raise unless ``value`` is a real number greater than or equal to zero."""
    check_type(value, Real, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value, name: str):
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    check_type(value, Real, name)
    if not 0 <= value <= 1:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(value, name: str):
    """Raise unless ``value`` lies in the half-open interval (0, 1)."""
    check_type(value, Real, name)
    if not 0 < value < 1:
        raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value
