"""Graph substrate: dynamic binary graphs, edits, partitioning, generators, I/O."""

from repro.graph.adjacency import Graph, normalize_edge
from repro.graph.edits import EditBatch, apply_batch, diff_graphs
from repro.graph.generators import (
    chung_lu,
    erdos_renyi,
    planted_partition,
    powerlaw_degree_sequence,
    random_regular_ish,
    ring_of_cliques,
)
from repro.graph.io import (
    from_networkx,
    parse_edge_lines,
    read_edge_list,
    relabel_to_integers,
    to_networkx,
    write_edge_list,
)
from repro.graph.partition import (
    ContiguousPartitioner,
    HashPartitioner,
    Partitioner,
    partition_counts,
)
from repro.graph.transform import (
    aggregate_weights,
    binarize,
    binarize_top_k,
    quantile_threshold,
)

__all__ = [
    "Graph",
    "normalize_edge",
    "EditBatch",
    "apply_batch",
    "diff_graphs",
    "erdos_renyi",
    "random_regular_ish",
    "chung_lu",
    "powerlaw_degree_sequence",
    "ring_of_cliques",
    "planted_partition",
    "Partitioner",
    "HashPartitioner",
    "ContiguousPartitioner",
    "partition_counts",
    "read_edge_list",
    "write_edge_list",
    "parse_edge_lines",
    "to_networkx",
    "from_networkx",
    "relabel_to_integers",
    "binarize",
    "binarize_top_k",
    "quantile_threshold",
    "aggregate_weights",
]
