"""Graph substrate: dynamic binary graphs, CSR snapshots, edits, partitioning.

The library deliberately keeps **two graph representations** with distinct
roles (the two-representation architecture):

* :class:`Graph` (``repro.graph.adjacency``) — *mutable* dict-of-set
  adjacency.  This is the substrate for **edits**: O(1) edge insert/delete/
  lookup, vertex insertion/deletion, the dynamic workloads and the
  incremental Correction Propagation all mutate it freely.  Vertex ids are
  arbitrary integers.
* :class:`CSRGraph` (``repro.graph.csr``) — an *immutable* compressed
  sparse row **snapshot** (sorted ``indptr``/``indices`` arrays over
  contiguous ids ``0..n-1``).  This is the substrate for **compute**: the
  vectorised engines (``FastPropagator``, ``FastSLPA``), distributed shard
  slicing (:func:`slice_csr`) and the benchmarks all scan its arrays.
  Construction is vectorised, and :meth:`CSRGraph.with_edits` (or a
  :class:`CSRDelta` overlay) re-snapshots after an edit batch in O(m)
  array ops.

Typical flow: mutate a :class:`Graph` (or stage a :class:`CSRDelta`),
snapshot with :meth:`CSRGraph.from_graph` / :meth:`CSRDelta.snapshot`, and
hand the snapshot to whichever engine or shard slicer needs array speed.
Both representations describe the same binary graph and round-trip
losslessly (``CSRGraph.from_graph(g).to_graph() == g``).
"""

from repro.graph.adjacency import Graph, normalize_edge
from repro.graph.csr import CSRDelta, CSRGraph, build_csr_arrays
from repro.graph.edits import EditBatch, apply_batch, diff_graphs
from repro.graph.generators import (
    chung_lu,
    erdos_renyi,
    planted_partition,
    powerlaw_degree_sequence,
    random_regular_ish,
    ring_of_cliques,
)
from repro.graph.io import (
    from_networkx,
    parse_edge_lines,
    read_edge_list,
    relabel_to_integers,
    to_networkx,
    write_edge_list,
)
from repro.graph.partition import (
    ContiguousPartitioner,
    HashPartitioner,
    Partitioner,
    partition_counts,
    slice_csr,
)
from repro.graph.transform import (
    aggregate_weights,
    binarize,
    binarize_top_k,
    quantile_threshold,
)

__all__ = [
    "Graph",
    "normalize_edge",
    "CSRGraph",
    "CSRDelta",
    "build_csr_arrays",
    "EditBatch",
    "apply_batch",
    "diff_graphs",
    "erdos_renyi",
    "random_regular_ish",
    "chung_lu",
    "powerlaw_degree_sequence",
    "ring_of_cliques",
    "planted_partition",
    "Partitioner",
    "HashPartitioner",
    "ContiguousPartitioner",
    "partition_counts",
    "slice_csr",
    "read_edge_list",
    "write_edge_list",
    "parse_edge_lines",
    "to_networkx",
    "from_networkx",
    "relabel_to_integers",
    "binarize",
    "binarize_top_k",
    "quantile_threshold",
    "aggregate_weights",
]
