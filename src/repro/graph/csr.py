"""Compressed sparse row graph snapshots — the shared compute substrate.

The library keeps two graph representations with distinct roles:

* :class:`repro.graph.adjacency.Graph` — mutable dict-of-set adjacency, the
  substrate for *edits* (O(1) edge insert/delete, the dynamic workloads);
* :class:`CSRGraph` — an immutable array snapshot (sorted ``indptr`` /
  ``indices``), the substrate for *compute*: the vectorised engines
  (:class:`repro.core.fast.FastPropagator`,
  :class:`repro.baselines.slpa_fast.FastSLPA`), distributed shard slicing
  (:func:`repro.graph.partition.slice_csr`), and every future batch engine.

Construction is fully vectorised (``np.fromiter`` + ``np.lexsort`` +
``np.bincount`` — no per-vertex Python loops), and :meth:`CSRGraph.with_edits`
re-snapshots after an edit batch in O(m) array operations, so dynamic
workloads can stay on the array substrate between batches.  The neighbour
order inside a row is ascending, matching the sorted-adjacency contract the
counter-based randomness (and hence the determinism tests) relies on.

:class:`CSRDelta` is the lightweight overlay for callers that accumulate
edits before paying for a rebuild: it answers ``has_edge``/``degree``/
``neighbors`` against base + pending edits and materialises a fresh
:class:`CSRGraph` on :meth:`CSRDelta.snapshot`.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Iterator, List, Tuple, Union

import numpy as np

from repro.graph.adjacency import Graph, normalize_edge
from repro.graph.edits import EditBatch

__all__ = ["CSRGraph", "CSRDelta", "build_csr_arrays"]

Edge = Tuple[int, int]


def _edge_keys(u: np.ndarray, v: np.ndarray, width: int) -> np.ndarray:
    """Encode directed pairs as single int64 keys (``u * width + v``)."""
    return u * np.int64(width) + v


def _csr_from_directed(
    n: int, src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort directed pairs into CSR arrays (rows ascending, sorted rows).

    Sorts a single combined ``src * n + dst`` key (one C radix/merge pass,
    no argsort indirection) and decodes the neighbour column with a modulo.
    """
    indptr = np.zeros(n + 1, dtype=np.int64)
    if n == 0 or len(src) == 0:
        return indptr, np.empty(0, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    key = src * np.int64(n) + dst
    key.sort()
    return indptr, key % np.int64(n)


def build_csr_arrays(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised CSR build of a graph with contiguous ids ``0..n-1``.

    Returns ``(indptr, indices)`` with ``indices[indptr[v]:indptr[v+1]]``
    being the ascending neighbours of ``v``.  This is the single builder in
    the library; everything CSR-shaped routes through here.

    The hot path has no per-edge Python loop: neighbour sets are flattened
    through a C-level :func:`itertools.chain` into one ``np.fromiter`` pass,
    rows are grouped and sorted by a single combined-key sort.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)
    ids = np.fromiter(graph.vertices(), dtype=np.int64, count=n)
    # n distinct ids inside [0, n) are exactly 0..n-1.
    if ids.min() < 0 or ids.max() >= n:
        raise ValueError(
            "CSRGraph requires contiguous vertex ids 0..n-1; "
            "use repro.graph.io.relabel_to_integers first"
        )
    degrees = np.fromiter(
        (len(graph.neighbors_view(v)) for v in range(n)), dtype=np.int64, count=n
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    total = int(indptr[-1])
    unsorted = np.fromiter(
        chain.from_iterable(graph.neighbors_view(v) for v in range(n)),
        dtype=np.int64,
        count=total,
    )
    key = np.repeat(np.arange(n, dtype=np.int64), degrees) * np.int64(n) + unsorted
    key.sort()
    return indptr, key % np.int64(n)


class CSRGraph:
    """An immutable CSR snapshot of an undirected binary graph.

    Vertex ids are contiguous ``0..n-1``; each undirected edge is stored in
    both directions and every row of ``indices`` is ascending.  Instances
    are cheap to slice (:func:`repro.graph.partition.slice_csr`), cheap to
    rebuild after edits (:meth:`with_edits`), and picklable (they ship to
    multiprocess workers as-is).
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, validate: bool = True):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if validate:
            self.check_invariants()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Snapshot a mutable :class:`Graph` (vectorised, no Python loops)."""
        indptr, indices = build_csr_arrays(graph)
        return cls(indptr, indices, validate=False)

    @classmethod
    def coerce(cls, graph: Union[Graph, "CSRGraph"]) -> "CSRGraph":
        """Pass a snapshot through unchanged; snapshot a mutable graph."""
        return graph if isinstance(graph, cls) else cls.from_graph(graph)

    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], num_vertices: int = 0
    ) -> "CSRGraph":
        """Build from canonical-or-not edge pairs; ids must be ``>= 0``.

        ``num_vertices`` raises the vertex count above ``max id + 1`` so
        trailing isolated vertices survive the round trip.
        """
        pairs = [normalize_edge(u, v) for u, v in edges]
        unique = sorted(set(pairs))
        m = len(unique)
        flat = np.fromiter(
            (endpoint for edge in unique for endpoint in edge),
            dtype=np.int64,
            count=2 * m,
        )
        u, v = flat[0::2], flat[1::2]
        if m and u.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        n = max(num_vertices, int(v.max()) + 1 if m else 0)
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        indptr, indices = _csr_from_directed(n, src, dst)
        return cls(indptr, indices, validate=False)

    def to_graph(self) -> Graph:
        """Materialise a mutable :class:`Graph` (isolated vertices kept)."""
        graph = Graph.from_edges((), vertices=range(self.num_vertices))
        u, v = self.edge_array()
        for a, b in zip(u.tolist(), v.tolist()):
            graph.add_edge(a, b)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree array (a fresh array each call)."""
        return np.diff(self.indptr)

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Ascending neighbour ids of ``v`` (a read-only array view)."""
        self._check_vertex(v)
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_vertex(self, v: int) -> bool:
        return 0 <= v < self.num_vertices

    def has_edge(self, u: int, v: int) -> bool:
        if not (self.has_vertex(u) and self.has_vertex(v)) or u == v:
            return False
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < len(row) and int(row[i]) == v

    def vertices(self) -> Iterator[int]:
        return iter(range(self.num_vertices))

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """All edges once, canonical ``(min, max)`` form, lexicographic order."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        keep = src < self.indices
        return src[keep], self.indices[keep]

    def edges(self) -> Iterator[Edge]:
        """Yield each edge exactly once in canonical ``(min, max)`` form."""
        u, v = self.edge_array()
        return iter(zip(u.tolist(), v.tolist()))

    def isolated_vertices(self) -> List[int]:
        """Vertices with no incident edges."""
        return np.flatnonzero(self.degrees == 0).tolist()

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------
    def with_edits(self, batch: EditBatch) -> "CSRGraph":
        """A new snapshot with ``batch`` applied, in O(m) array operations.

        Mirrors :func:`repro.graph.edits.apply_batch` semantics: insertions
        must be absent, deletions present (``ValueError`` otherwise).
        Inserted edges may mention new vertex ids; the snapshot grows to
        ``max id + 1``.
        """
        ins = sorted(batch.insertions)
        dels = sorted(batch.deletions)
        n_new = self.num_vertices
        if ins:
            n_new = max(n_new, max(max(u, v) for u, v in ins) + 1)
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        dst = self.indices
        keys = _edge_keys(src, dst, n_new)

        if dels:
            da = np.array([e[0] for e in dels], dtype=np.int64)
            db = np.array([e[1] for e in dels], dtype=np.int64)
            del_keys = np.concatenate(
                [_edge_keys(da, db, n_new), _edge_keys(db, da, n_new)]
            )
            drop = np.isin(keys, del_keys)
            if int(drop.sum()) != len(del_keys):
                missing = [
                    e for e in dels
                    if not (self.has_vertex(e[0]) and self.has_edge(*e))
                ]
                raise ValueError(f"deletions not present: {missing[:5]}")
            src, dst, keys = src[~drop], dst[~drop], keys[~drop]

        if ins:
            ia = np.array([e[0] for e in ins], dtype=np.int64)
            ib = np.array([e[1] for e in ins], dtype=np.int64)
            ins_keys = _edge_keys(ia, ib, n_new)
            present = np.isin(ins_keys, keys)
            if present.any():
                bad = [ins[i] for i in np.flatnonzero(present).tolist()]
                raise ValueError(f"insertions already present: {bad[:5]}")
            src = np.concatenate([src, ia, ib])
            dst = np.concatenate([dst, ib, ia])

        indptr, indices = _csr_from_directed(n_new, src, dst)
        return CSRGraph(indptr, indices, validate=False)

    # ------------------------------------------------------------------
    # Invariants / protocol
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert structural invariants (shape, symmetry, sortedness)."""
        indptr, indices = self.indptr, self.indices
        if indptr.ndim != 1 or len(indptr) < 1:
            raise AssertionError("indptr must be a 1-D array of length n+1")
        if int(indptr[0]) != 0 or int(indptr[-1]) != len(indices):
            raise AssertionError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise AssertionError("indptr must be non-decreasing")
        n = self.num_vertices
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise AssertionError("indices contain out-of-range vertex ids")
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        if np.any(src == indices):
            raise AssertionError("self-loop stored in CSR")
        if len(indices) > 1:
            # Order may only break at row starts; a non-ascending step inside
            # a row means unsorted or duplicate neighbours.
            breaks = np.flatnonzero(np.diff(indices) <= 0) + 1
            if np.any(~np.isin(breaks, indptr)):
                raise AssertionError("a CSR row is not strictly ascending")
        # Symmetry: the reversed directed edge set must equal the original.
        keys = _edge_keys(src, indices, max(n, 1))
        rev = _edge_keys(indices, src, max(n, 1))
        if not np.array_equal(np.sort(keys), np.sort(rev)):
            raise AssertionError("adjacency is not symmetric")

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise KeyError(f"vertex {v} not in graph")

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self.indptr, other.indptr) and np.array_equal(
            self.indices, other.indices
        )

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


class CSRDelta:
    """A mutable edit overlay on top of an immutable :class:`CSRGraph`.

    Accumulates edge insertions/deletions without touching the base arrays;
    reads (``has_edge`` / ``degree`` / ``neighbors``) see base + pending
    edits, and :meth:`snapshot` materialises a fresh :class:`CSRGraph` in
    one O(m) rebuild.  This is the cheap path for dynamic workloads that
    alternate small edit batches with array-speed compute.
    """

    def __init__(self, base: CSRGraph):
        self.base = base
        self._inserted: set = set()
        self._deleted: set = set()

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Stage an insertion; returns True if it changes the overlay graph."""
        edge = normalize_edge(u, v)
        if edge in self._deleted:
            self._deleted.discard(edge)
            return True
        if self.has_edge(u, v):
            return False
        self._inserted.add(edge)
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Stage a deletion; returns True if the edge existed in the overlay."""
        edge = normalize_edge(u, v)
        if edge in self._inserted:
            self._inserted.discard(edge)
            return True
        if not self.base.has_edge(*edge) or edge in self._deleted:
            return False
        self._deleted.add(edge)
        return True

    def apply(self, batch: EditBatch) -> None:
        """Stage a whole batch (cancelling pairs compose as in ``merged_with``)."""
        for u, v in sorted(batch.deletions):
            self.remove_edge(u, v)
        for u, v in sorted(batch.insertions):
            self.add_edge(u, v)

    @property
    def pending(self) -> EditBatch:
        """The net staged edits as an :class:`EditBatch`."""
        return EditBatch(
            insertions=frozenset(self._inserted), deletions=frozenset(self._deleted)
        )

    def __bool__(self) -> bool:
        return bool(self._inserted or self._deleted)

    # ------------------------------------------------------------------
    # Overlay-aware reads
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        grown = max((max(u, v) + 1 for u, v in self._inserted), default=0)
        return max(self.base.num_vertices, grown)

    @property
    def num_edges(self) -> int:
        return self.base.num_edges + len(self._inserted) - len(self._deleted)

    def has_edge(self, u: int, v: int) -> bool:
        edge = normalize_edge(u, v)
        if edge in self._inserted:
            return True
        if edge in self._deleted:
            return False
        return self.base.has_edge(*edge)

    def degree(self, v: int) -> int:
        base_deg = self.base.degree(v) if self.base.has_vertex(v) else 0
        gained = sum(1 for e in self._inserted if v in e)
        lost = sum(1 for e in self._deleted if v in e)
        return base_deg + gained - lost

    def neighbors(self, v: int) -> np.ndarray:
        """Ascending neighbour array of ``v`` under the overlay."""
        base = (
            set(self.base.neighbors(v).tolist()) if self.base.has_vertex(v) else set()
        )
        for a, b in self._inserted:
            if a == v:
                base.add(b)
            elif b == v:
                base.add(a)
        for a, b in self._deleted:
            if a == v:
                base.discard(b)
            elif b == v:
                base.discard(a)
        return np.array(sorted(base), dtype=np.int64)

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def snapshot(self) -> CSRGraph:
        """Rebuild: a fresh :class:`CSRGraph` with all staged edits applied."""
        if not self:
            return self.base
        return self.base.with_edits(self.pending)

    def __repr__(self) -> str:
        return (
            f"CSRDelta(base={self.base!r}, +{len(self._inserted)}, "
            f"-{len(self._deleted)})"
        )
