"""Edit batches: the unit of change for the dynamic algorithms.

Section IV of the paper studies *batched* edge insertions and deletions
("we generate the graph edit batch by randomly selecting edges for insertion
and deletion", Section V-B1).  :class:`EditBatch` is the normalised
description of such a batch, and :func:`diff_graphs` recovers a batch from
two graph snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.graph.adjacency import Graph, normalize_edge

__all__ = ["EditBatch", "diff_graphs", "apply_batch"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class EditBatch:
    """A batch of edge insertions and deletions (canonicalised, disjoint).

    ``insertions`` and ``deletions`` are frozensets of canonical edges; an
    edge may not appear in both.  Construct via :meth:`build` to get
    canonicalisation for free.
    """

    insertions: FrozenSet[Edge] = field(default_factory=frozenset)
    deletions: FrozenSet[Edge] = field(default_factory=frozenset)

    def __post_init__(self):
        overlap = self.insertions & self.deletions
        if overlap:
            raise ValueError(f"edges both inserted and deleted: {sorted(overlap)[:5]}")
        for u, v in self.insertions | self.deletions:
            if u >= v:
                raise ValueError(f"edge ({u}, {v}) is not in canonical (min, max) form")

    @classmethod
    def build(
        cls,
        insertions: Iterable[Edge] = (),
        deletions: Iterable[Edge] = (),
    ) -> "EditBatch":
        """Canonicalise raw edge pairs and build a batch.

        An edge listed in both directions counts once.  An edge appearing in
        both roles is rejected (apply order would be ambiguous).
        """
        ins = frozenset(normalize_edge(u, v) for u, v in insertions)
        dels = frozenset(normalize_edge(u, v) for u, v in deletions)
        return cls(insertions=ins, deletions=dels)

    @classmethod
    def empty(cls) -> "EditBatch":
        return cls()

    @property
    def size(self) -> int:
        """Total number of edge edits in the batch."""
        return len(self.insertions) + len(self.deletions)

    def __bool__(self) -> bool:
        return self.size > 0

    def touched_vertices(self) -> FrozenSet[int]:
        """All endpoints of edited edges."""
        touched: Set[int] = set()
        for u, v in self.insertions | self.deletions:
            touched.add(u)
            touched.add(v)
        return frozenset(touched)

    def added_neighbors(self) -> Dict[int, Set[int]]:
        """Map vertex -> set of neighbours gained by this batch."""
        gained: Dict[int, Set[int]] = {}
        for u, v in self.insertions:
            gained.setdefault(u, set()).add(v)
            gained.setdefault(v, set()).add(u)
        return gained

    def removed_neighbors(self) -> Dict[int, Set[int]]:
        """Map vertex -> set of neighbours lost by this batch."""
        lost: Dict[int, Set[int]] = {}
        for u, v in self.deletions:
            lost.setdefault(u, set()).add(v)
            lost.setdefault(v, set()).add(u)
        return lost

    def inverse(self) -> "EditBatch":
        """The batch that undoes this one."""
        return EditBatch(insertions=self.deletions, deletions=self.insertions)

    def merged_with(self, later: "EditBatch") -> "EditBatch":
        """Compose with a ``later`` batch applied after this one.

        Cancelling pairs (insert then delete, or delete then insert) drop
        out, matching the net effect on the graph.
        """
        ins = set(self.insertions)
        dels = set(self.deletions)
        for edge in later.insertions:
            if edge in dels:
                dels.discard(edge)
            else:
                ins.add(edge)
        for edge in later.deletions:
            if edge in ins:
                ins.discard(edge)
            else:
                dels.add(edge)
        return EditBatch(insertions=frozenset(ins), deletions=frozenset(dels))

    def validate_against(self, graph: Graph) -> None:
        """Raise ``ValueError`` if the batch cannot apply cleanly to ``graph``.

        Insertions must be absent from the graph; deletions must be present.
        """
        bad_ins = [e for e in self.insertions if graph.has_edge(*e)]
        if bad_ins:
            raise ValueError(f"insertions already present: {sorted(bad_ins)[:5]}")
        bad_dels = [e for e in self.deletions if not graph.has_edge(*e)]
        if bad_dels:
            raise ValueError(f"deletions not present: {sorted(bad_dels)[:5]}")


def apply_batch(graph: Graph, batch: EditBatch, strict: bool = True) -> Graph:
    """Apply ``batch`` to ``graph`` in place and return it.

    With ``strict=True`` (default) the batch is validated first, so a failed
    apply leaves the graph untouched.
    """
    if strict:
        batch.validate_against(graph)
    for u, v in batch.deletions:
        graph.remove_edge(u, v)
    for u, v in batch.insertions:
        graph.add_edge(u, v)
    return graph


def diff_graphs(old: Graph, new: Graph) -> EditBatch:
    """Recover the edit batch that transforms ``old`` into ``new``.

    Only edge differences are reported; isolated-vertex changes are not part
    of a batch (the incremental algorithm treats vertices through their
    incident edges, per Section IV premises).
    """
    old_edges = set(old.edges())
    new_edges = set(new.edges())
    return EditBatch(
        insertions=frozenset(new_edges - old_edges),
        deletions=frozenset(old_edges - new_edges),
    )
