"""Vertex partitioners for the distributed engine.

The paper runs on a 7-node Spark cluster; our BSP simulator needs the same
notion of "which worker owns which vertex".  Partitioners are pure functions
of the vertex id, so ownership stays stable as the graph mutates and every
process in the multiprocess backend can compute it locally without
coordination.

:func:`slice_csr` carves a :class:`repro.graph.csr.CSRGraph` into per-worker
CSR shard arrays directly (vectorised multi-slice gathers, no round trip
through the mutable :class:`~repro.graph.adjacency.Graph`), which is how the
CSR-backed worker shards are built.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

import numpy as np

from repro.core.randomness import mix64, mix64_array
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive, check_type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (csr imports edits)
    from repro.graph.csr import CSRGraph

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "ContiguousPartitioner",
    "partition_counts",
    "slice_csr",
]


class Partitioner:
    """Maps vertex ids to worker indices ``0 .. num_partitions-1``."""

    def __init__(self, num_partitions: int):
        check_type(num_partitions, int, "num_partitions")
        check_positive(num_partitions, "num_partitions")
        self.num_partitions = num_partitions

    def owner(self, vertex: int) -> int:
        raise NotImplementedError

    def owner_array(self, vertices: np.ndarray) -> np.ndarray:
        """Owner of every id in ``vertices`` as an int64 array.

        The canonical vectorised hook: both built-in partitioners override
        it with pure array ops (it sits on the hot routing path of the
        columnar BSP engine, which gathers the owner of every message
        destination in one call per superstep).  The base implementation
        dispatches through the legacy :meth:`owners_array` name so PR-1
        subclasses that overrode *that* keep their vectorised form.
        """
        return self.owners_array(vertices)

    def owners_array(self, vertices: np.ndarray) -> np.ndarray:
        """Legacy name of :meth:`owner_array`; generic per-element fallback."""
        return np.fromiter(
            (self.owner(int(v)) for v in vertices),
            dtype=np.int64,
            count=len(vertices),
        )

    def partition(self, vertices: Iterable[int]) -> Dict[int, List[int]]:
        """Group ``vertices`` by owner; every partition index is present."""
        groups: Dict[int, List[int]] = {p: [] for p in range(self.num_partitions)}
        for vertex in vertices:
            groups[self.owner(vertex)].append(vertex)
        return groups

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_partitions={self.num_partitions})"


# Odd 64-bit multiplier decorrelating vertex ids before the mix (same role
# as the domain constants in repro.core.randomness, local to partitioning).
_C_PARTITION = 0x8D8AC1B3F8A7351B
_MASK64 = (1 << 64) - 1


class HashPartitioner(Partitioner):
    """Uniform hash partitioning (the Spark default for pair RDDs).

    The per-vertex assignment is one SplitMix64 mix over the id under a
    BLAKE2b-derived base key, so it is reproducible across processes and
    runs *and* has an exactly-matching vectorised form
    (:meth:`owner_array`) for the columnar routing barrier; ``salt`` lets
    tests create distinct assignments.
    """

    def __init__(self, num_partitions: int, salt: int = 0):
        super().__init__(num_partitions)
        check_type(salt, int, "salt")
        self.salt = salt
        self._base = derive_seed("hash-partition", salt)

    def owner(self, vertex: int) -> int:
        h = mix64(self._base ^ ((vertex * _C_PARTITION) & _MASK64))
        return h % self.num_partitions

    def owner_array(self, vertices: np.ndarray) -> np.ndarray:
        v = np.asarray(vertices).astype(np.uint64, copy=False)
        h = mix64_array(np.uint64(self._base) ^ (v * np.uint64(_C_PARTITION)))
        return (h % np.uint64(self.num_partitions)).astype(np.int64)


class ContiguousPartitioner(Partitioner):
    """Range partitioning of ``0 .. num_vertices-1`` into equal blocks.

    Useful for locality experiments: LFR and the web-graph generator emit
    community-correlated vertex ids, so contiguous blocks keep many edges
    worker-local.
    """

    def __init__(self, num_partitions: int, num_vertices: int):
        super().__init__(num_partitions)
        check_type(num_vertices, int, "num_vertices")
        check_positive(num_vertices, "num_vertices")
        self.num_vertices = num_vertices
        self._block = -(-num_vertices // num_partitions)  # ceil division

    def owner(self, vertex: int) -> int:
        if not 0 <= vertex < self.num_vertices:
            # Out-of-range ids (e.g. vertices inserted later) fall back to hash.
            return derive_seed("range-overflow", vertex) % self.num_partitions
        return min(vertex // self._block, self.num_partitions - 1)

    def owner_array(self, vertices: np.ndarray) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        in_range = (vertices >= 0) & (vertices < self.num_vertices)
        if in_range.all():
            return np.minimum(vertices // self._block, self.num_partitions - 1)
        return super().owner_array(vertices)


def partition_counts(partitioner: Partitioner, vertices: Iterable[int]) -> List[int]:
    """Return the number of vertices owned by each partition."""
    counts = [0] * partitioner.num_partitions
    for vertex in vertices:
        counts[partitioner.owner(vertex)] += 1
    return counts


def _gather_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows ``rows`` into a local (indptr, indices) pair."""
    lens = (indptr[rows + 1] - indptr[rows]) if len(rows) else np.zeros(0, np.int64)
    local_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lens, out=local_indptr[1:])
    total = int(local_indptr[-1])
    if total == 0:
        return local_indptr, np.empty(0, dtype=np.int64)
    starts = indptr[rows]
    # Standard multi-slice gather: offsets of each row start, then a ramp.
    gather = np.repeat(starts - local_indptr[:-1], lens) + np.arange(total)
    return local_indptr, indices[gather]


def slice_csr(
    csr: "CSRGraph", partitioner: Partitioner
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Slice a CSR snapshot into per-worker CSR shard arrays.

    Returns one ``(local_ids, indptr, indices)`` triple per partition:
    ``local_ids`` holds the owned vertex ids ascending, and row ``r`` of the
    local CSR pair is the (global-id) neighbour list of ``local_ids[r]``.
    Pure array ops — the snapshot is never converted back to a dict graph.
    """
    owners = partitioner.owner_array(
        np.arange(csr.num_vertices, dtype=np.int64)
    )
    shards = []
    for p in range(partitioner.num_partitions):
        local_ids = np.flatnonzero(owners == p).astype(np.int64)
        local_indptr, local_indices = _gather_rows(csr.indptr, csr.indices, local_ids)
        shards.append((local_ids, local_indptr, local_indices))
    return shards
