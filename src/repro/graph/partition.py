"""Vertex partitioners for the distributed engine.

The paper runs on a 7-node Spark cluster; our BSP simulator needs the same
notion of "which worker owns which vertex".  Partitioners are pure functions
of the vertex id, so ownership stays stable as the graph mutates and every
process in the multiprocess backend can compute it locally without
coordination.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive, check_type

__all__ = ["Partitioner", "HashPartitioner", "ContiguousPartitioner", "partition_counts"]


class Partitioner:
    """Maps vertex ids to worker indices ``0 .. num_partitions-1``."""

    def __init__(self, num_partitions: int):
        check_type(num_partitions, int, "num_partitions")
        check_positive(num_partitions, "num_partitions")
        self.num_partitions = num_partitions

    def owner(self, vertex: int) -> int:
        raise NotImplementedError

    def partition(self, vertices: Iterable[int]) -> Dict[int, List[int]]:
        """Group ``vertices`` by owner; every partition index is present."""
        groups: Dict[int, List[int]] = {p: [] for p in range(self.num_partitions)}
        for vertex in vertices:
            groups[self.owner(vertex)].append(vertex)
        return groups

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_partitions={self.num_partitions})"


class HashPartitioner(Partitioner):
    """Uniform hash partitioning (the Spark default for pair RDDs).

    Uses the library's stable BLAKE2b-derived hash so the assignment is
    reproducible across processes and runs; ``salt`` lets tests create
    distinct assignments.
    """

    def __init__(self, num_partitions: int, salt: int = 0):
        super().__init__(num_partitions)
        check_type(salt, int, "salt")
        self.salt = salt

    def owner(self, vertex: int) -> int:
        return derive_seed("hash-partition", self.salt, vertex) % self.num_partitions


class ContiguousPartitioner(Partitioner):
    """Range partitioning of ``0 .. num_vertices-1`` into equal blocks.

    Useful for locality experiments: LFR and the web-graph generator emit
    community-correlated vertex ids, so contiguous blocks keep many edges
    worker-local.
    """

    def __init__(self, num_partitions: int, num_vertices: int):
        super().__init__(num_partitions)
        check_type(num_vertices, int, "num_vertices")
        check_positive(num_vertices, "num_vertices")
        self.num_vertices = num_vertices
        self._block = -(-num_vertices // num_partitions)  # ceil division

    def owner(self, vertex: int) -> int:
        if not 0 <= vertex < self.num_vertices:
            # Out-of-range ids (e.g. vertices inserted later) fall back to hash.
            return derive_seed("range-overflow", vertex) % self.num_partitions
        return min(vertex // self._block, self.num_partitions - 1)


def partition_counts(partitioner: Partitioner, vertices: Iterable[int]) -> List[int]:
    """Return the number of vertices owned by each partition."""
    counts = [0] * partitioner.num_partitions
    for vertex in vertices:
        counts[partitioner.owner(vertex)] += 1
    return counts
