"""Basic random-graph generators.

These serve two roles: fixtures for tests, and building blocks for the
workload generators (``repro.workloads``).  All generators take an explicit
``seed`` and return :class:`repro.graph.adjacency.Graph`.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.graph.adjacency import Graph
from repro.utils.rng import derive_rng
from repro.utils.validation import check_non_negative, check_positive, check_type

__all__ = [
    "erdos_renyi",
    "random_regular_ish",
    "chung_lu",
    "powerlaw_degree_sequence",
    "ring_of_cliques",
    "planted_partition",
]


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) with expected ``p * n * (n-1) / 2`` edges.

    Uses geometric skipping, so sparse graphs cost O(|E|) not O(n^2).
    """
    check_type(n, int, "n")
    check_non_negative(n, "n")
    if not 0 <= p <= 1:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = derive_rng(seed, "erdos-renyi", n)
    graph = Graph.from_edges((), vertices=range(n))
    if p == 0 or n < 2:
        return graph
    if p == 1:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph
    # Geometric skipping over the lexicographic edge enumeration.
    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def random_regular_ish(n: int, k: int, seed: int = 0) -> Graph:
    """Approximately k-regular graph via configuration-model matching.

    Self-loops and parallel edges from the matching are dropped, so degrees
    may fall slightly below ``k``; adequate for fixtures where we only need
    "roughly regular".
    """
    check_type(n, int, "n")
    check_type(k, int, "k")
    check_positive(n, "n")
    check_non_negative(k, "k")
    if k >= n:
        raise ValueError(f"k={k} must be < n={n}")
    rng = derive_rng(seed, "regular", n, k)
    stubs: List[int] = [v for v in range(n) for _ in range(k)]
    rng.shuffle(stubs)
    graph = Graph.from_edges((), vertices=range(n))
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            graph.add_edge(u, v)
    return graph


def powerlaw_degree_sequence(
    n: int,
    exponent: float,
    min_degree: int,
    max_degree: int,
    seed: int = 0,
) -> List[int]:
    """Sample ``n`` degrees from a truncated discrete power law.

    ``P(d) ∝ d^(-exponent)`` for ``min_degree <= d <= max_degree``.  The sum
    is forced even (required by stub matching) by bumping one entry.
    """
    check_type(n, int, "n")
    check_non_negative(n, "n")
    check_positive(exponent, "exponent")
    check_type(min_degree, int, "min_degree")
    check_type(max_degree, int, "max_degree")
    check_positive(min_degree, "min_degree")
    if max_degree < min_degree:
        raise ValueError(f"max_degree={max_degree} < min_degree={min_degree}")
    rng = derive_rng(seed, "powerlaw-degrees", n, min_degree, max_degree)
    support = range(min_degree, max_degree + 1)
    weights = [d ** (-exponent) for d in support]
    degrees = rng.choices(list(support), weights=weights, k=n)
    if sum(degrees) % 2 == 1:
        # Bump any entry that has room; min_degree <= max_degree guarantees
        # at least one direction works.
        for i, d in enumerate(degrees):
            if d < max_degree:
                degrees[i] += 1
                break
        else:
            degrees[0] -= 1
    return degrees


def chung_lu(degrees: Sequence[int], seed: int = 0) -> Graph:
    """Chung-Lu random graph with expected degrees ``degrees``.

    Edge ``(u, v)`` appears with probability ``min(1, d_u d_v / (2m))``.
    Implemented with the Miller-Hagberg sorted-weights algorithm, giving
    O(n + m) expected time — fast enough for the web-graph substitute.
    """
    n = len(degrees)
    graph = Graph.from_edges((), vertices=range(n))
    total = float(sum(degrees))
    if total <= 0 or n < 2:
        return graph
    rng = derive_rng(seed, "chung-lu", n)
    order = sorted(range(n), key=lambda v: degrees[v], reverse=True)
    weights = [float(degrees[v]) for v in order]
    for i in range(n - 1):
        wi = weights[i]
        if wi <= 0:
            break
        j = i + 1
        p = min(wi * weights[j] / total, 1.0)
        while j < n and p > 0:
            if p != 1.0:
                r = rng.random()
                j += int(math.log(r) / math.log(1.0 - p)) if p < 1.0 else 0
            if j < n:
                q = min(wi * weights[j] / total, 1.0)
                if rng.random() < q / p:
                    graph.add_edge(order[i], order[j])
                p = q
                j += 1
    return graph


def ring_of_cliques(num_cliques: int, clique_size: int) -> Graph:
    """``num_cliques`` cliques of ``clique_size`` joined in a ring.

    A classic community-detection fixture: each clique is an unambiguous
    ground-truth community, with single bridge edges between consecutive
    cliques.
    """
    check_type(num_cliques, int, "num_cliques")
    check_type(clique_size, int, "clique_size")
    check_positive(num_cliques, "num_cliques")
    if clique_size < 2:
        raise ValueError(f"clique_size must be >= 2, got {clique_size}")
    graph = Graph()
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                graph.add_edge(base + i, base + j)
    if num_cliques > 1:
        for c in range(num_cliques):
            u = c * clique_size
            v = ((c + 1) % num_cliques) * clique_size + 1
            if num_cliques == 2 and c == 1:
                break  # avoid adding the same bridge twice
            graph.add_edge(u, v)
    return graph


def planted_partition(
    num_groups: int,
    group_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Graph:
    """Planted partition model: dense blocks, sparse cross-block edges.

    Ground truth for non-overlapping community tests where LFR would be
    overkill.
    """
    check_type(num_groups, int, "num_groups")
    check_type(group_size, int, "group_size")
    check_positive(num_groups, "num_groups")
    check_positive(group_size, "group_size")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0 <= p <= 1:
            raise ValueError(f"{name} must be in [0, 1], got {p}")
    rng = derive_rng(seed, "planted", num_groups, group_size)
    n = num_groups * group_size
    graph = Graph.from_edges((), vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            same = (u // group_size) == (v // group_size)
            if rng.random() < (p_in if same else p_out):
                graph.add_edge(u, v)
    return graph
