"""Transforming arbitrary networks into binary graphs.

Section I of the paper: *"Any network can be transformed to a binary graph
by removing the directions of edges and applying thresholding on weighted
edges."*  This module implements that preprocessing for weighted and/or
directed edge lists, so real-world inputs can be fed to the detectors:

* :func:`binarize` — global weight threshold + symmetrisation;
* :func:`binarize_top_k` — per-vertex top-k strongest edges (the common
  alternative when weights are incomparable across hubs);
* :func:`quantile_threshold` — pick the threshold keeping a target fraction
  of edges.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.graph.adjacency import Graph
from repro.utils.validation import check_positive, check_type

__all__ = ["binarize", "binarize_top_k", "quantile_threshold", "aggregate_weights"]

WeightedEdge = Tuple[int, int, float]


def aggregate_weights(
    edges: Iterable[WeightedEdge], combine: str = "sum"
) -> Dict[Tuple[int, int], float]:
    """Symmetrise and deduplicate a weighted (possibly directed) edge list.

    Parallel edges and both directions collapse into one undirected edge
    whose weight combines per ``combine``: ``"sum"`` (default), ``"max"``,
    or ``"min"``.  Self-loops are dropped.
    """
    if combine not in ("sum", "max", "min"):
        raise ValueError(f"combine must be sum|max|min, got {combine!r}")
    weights: Dict[Tuple[int, int], float] = {}
    for u, v, w in edges:
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key not in weights:
            weights[key] = float(w)
        elif combine == "sum":
            weights[key] += float(w)
        elif combine == "max":
            weights[key] = max(weights[key], float(w))
        else:
            weights[key] = min(weights[key], float(w))
    return weights


def binarize(
    edges: Iterable[WeightedEdge],
    threshold: float = 0.0,
    combine: str = "sum",
    vertices: Iterable[int] = (),
) -> Graph:
    """The paper's preprocessing: symmetrise, then keep edges with
    combined weight >= ``threshold``.

    >>> g = binarize([(0, 1, 0.9), (1, 0, 0.2), (1, 2, 0.05)], threshold=0.5)
    >>> sorted(g.edges())
    [(0, 1)]
    """
    weights = aggregate_weights(edges, combine=combine)
    graph = Graph.from_edges((), vertices=vertices)
    for (u, v), w in weights.items():
        graph.add_vertex(u)
        graph.add_vertex(v)
        if w >= threshold:
            graph.add_edge(u, v)
    return graph


def binarize_top_k(
    edges: Iterable[WeightedEdge],
    k: int,
    combine: str = "sum",
) -> Graph:
    """Keep each vertex's ``k`` strongest incident edges (union semantics).

    An edge survives if it is in the top-k of *either* endpoint, so the
    result is symmetric; ties break toward the lexicographically smaller
    neighbour for determinism.
    """
    check_type(k, int, "k")
    check_positive(k, "k")
    weights = aggregate_weights(edges, combine=combine)
    incident: Dict[int, List[Tuple[float, Tuple[int, int]]]] = {}
    for edge, w in weights.items():
        u, v = edge
        incident.setdefault(u, []).append((w, edge))
        incident.setdefault(v, []).append((w, edge))
    keep = set()
    for v, entries in incident.items():
        entries.sort(key=lambda item: (-item[0], item[1]))
        keep.update(edge for _w, edge in entries[:k])
    graph = Graph.from_edges((), vertices=incident.keys())
    for u, v in keep:
        graph.add_edge(u, v)
    return graph


def quantile_threshold(
    edges: Iterable[WeightedEdge],
    keep_fraction: float,
    combine: str = "sum",
) -> float:
    """The weight threshold that keeps roughly ``keep_fraction`` of edges.

    Useful for calibrating :func:`binarize` without inspecting weights:
    ``binarize(edges, quantile_threshold(edges, 0.2))`` keeps the strongest
    ~20%.
    """
    if not 0 < keep_fraction <= 1:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    weights = sorted(aggregate_weights(edges, combine=combine).values(), reverse=True)
    if not weights:
        return 0.0
    index = min(len(weights) - 1, max(0, math.ceil(keep_fraction * len(weights)) - 1))
    return weights[index]
