"""Dynamic undirected binary graph.

The paper operates on *binary graphs*: undirected, unweighted, no self-loops,
no parallel edges (Section I).  :class:`Graph` is the substrate every other
subsystem builds on: adjacency sets with O(1) edge insert/delete/lookup, plus
vertex-level operations used by the dynamic workloads (Section IV premises:
vertex insertion behaves like a vertex whose old neighbours were all removed;
vertex deletion like removing all incident edges).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

__all__ = ["Graph", "normalize_edge"]

Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of an undirected edge.

    Raises ``ValueError`` for self-loops, which binary graphs exclude.
    """
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) is not allowed in a binary graph")
    return (u, v) if u < v else (v, u)


class Graph:
    """An undirected, unweighted, dynamic graph over integer vertex ids.

    Vertices may exist with degree zero (isolated); edges are unordered pairs
    of distinct vertices.  All mutators keep the adjacency symmetric.

    >>> g = Graph.from_edges([(0, 1), (1, 2)])
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.remove_edge(0, 1); g.degree(1)
    1
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self):
        self._adj: Dict[int, Set[int]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge], vertices: Iterable[int] = ()) -> "Graph":
        """Build a graph from an edge iterable (duplicates are ignored).

        ``vertices`` may add isolated vertices not mentioned by any edge.
        """
        graph = cls()
        for vertex in vertices:
            graph.add_vertex(vertex)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def copy(self) -> "Graph":
        """Return an independent deep copy of the adjacency structure."""
        clone = Graph()
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # Vertex operations
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> bool:
        """Ensure ``v`` exists; return True if it was newly added."""
        if v in self._adj:
            return False
        self._adj[v] = set()
        return True

    def remove_vertex(self, v: int) -> List[Edge]:
        """Remove ``v`` and all incident edges; return the removed edges."""
        if v not in self._adj:
            raise KeyError(f"vertex {v} not in graph")
        removed = [normalize_edge(v, u) for u in self._adj[v]]
        for u in list(self._adj[v]):
            self._adj[u].discard(v)
        self._num_edges -= len(removed)
        del self._adj[v]
        return removed

    def has_vertex(self, v: int) -> bool:
        return v in self._adj

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``{u, v}``; return True if it did not already exist.

        Endpoints are created on demand.
        """
        normalize_edge(u, v)  # validates no self-loop
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete edge ``{u, v}``; return True if it existed."""
        if u not in self._adj or v not in self._adj[u]:
            return False
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> FrozenSet[int]:
        """Return the neighbour set of ``v`` as an immutable snapshot."""
        if v not in self._adj:
            raise KeyError(f"vertex {v} not in graph")
        return frozenset(self._adj[v])

    def neighbors_view(self, v: int) -> Set[int]:
        """Return the *live* neighbour set (do not mutate)."""
        if v not in self._adj:
            raise KeyError(f"vertex {v} not in graph")
        return self._adj[v]

    def degree(self, v: int) -> int:
        if v not in self._adj:
            raise KeyError(f"vertex {v} not in graph")
        return len(self._adj[v])

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Yield each edge exactly once, in canonical ``(min, max)`` form."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def average_degree(self) -> float:
        """Mean degree, 0.0 for the empty graph."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def max_degree(self) -> int:
        """Largest vertex degree, 0 for the empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def isolated_vertices(self) -> List[int]:
        """Vertices with no incident edges."""
        return [v for v, nbrs in self._adj.items() if not nbrs]

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def connected_components(self) -> List[Set[int]]:
        """Connected components via iterative BFS (no recursion limits)."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            seen.add(start)
            while frontier:
                node = frontier.pop()
                for nbr in self._adj[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        component.add(nbr)
                        frontier.append(nbr)
            components.append(component)
        return components

    def subgraph(self, keep: Iterable[int]) -> "Graph":
        """Return the induced subgraph on ``keep`` (vertices preserved)."""
        keep_set = set(keep)
        sub = Graph()
        for v in keep_set:
            if v in self._adj:
                sub.add_vertex(v)
        for v in keep_set:
            if v not in self._adj:
                continue
            for u in self._adj[v]:
                if u in keep_set and v < u:
                    sub.add_edge(v, u)
        return sub

    def check_invariants(self) -> None:
        """Assert structural invariants; used heavily by the test suite."""
        count = 0
        for v, nbrs in self._adj.items():
            for u in nbrs:
                if v == u:
                    raise AssertionError(f"self-loop stored at vertex {v}")
                if u not in self._adj or v not in self._adj[u]:
                    raise AssertionError(f"asymmetric edge ({v}, {u})")
                count += 1
        if count != 2 * self._num_edges:
            raise AssertionError(
                f"edge count mismatch: counted {count // 2}, stored {self._num_edges}"
            )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, item) -> bool:
        if isinstance(item, tuple) and len(item) == 2:
            return self.has_edge(*item)
        return self.has_vertex(item)

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"
