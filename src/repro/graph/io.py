"""Graph I/O: edge-list files and networkx interop.

The paper's real-world pipeline extracts the WebGraph-compressed crawl into
plain text, symmetrises it, and drops multi-edges and self-loops
(Section V-B1).  :func:`read_edge_list` performs exactly that normalisation,
so any directed multigraph edge list becomes a binary graph.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Tuple

import networkx as nx

from repro.graph.adjacency import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "parse_edge_lines",
    "to_networkx",
    "from_networkx",
    "relabel_to_integers",
]

Edge = Tuple[int, int]


def parse_edge_lines(lines: Iterable[str]) -> List[Edge]:
    """Parse whitespace-separated vertex-pair lines.

    Blank lines and lines starting with ``#`` or ``%`` are skipped.
    Self-loops are dropped (binary-graph normalisation); duplicates are kept
    here and collapse when loaded into a :class:`Graph`.
    """
    edges: List[Edge] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected two vertex ids, got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer vertex id in {line!r}") from exc
        if u == v:
            continue
        edges.append((u, v))
    return edges


def read_edge_list(path: str) -> Graph:
    """Load a binary graph from an edge-list file (symmetrised, deduplicated)."""
    with open(path, "r", encoding="utf-8") as handle:
        edges = parse_edge_lines(handle)
    return Graph.from_edges(edges)


def write_edge_list(graph: Graph, path: str, header: str = "") -> None:
    """Write the graph as a canonical, sorted edge list."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in sorted(graph.edges()):
            handle.write(f"{u} {v}\n")


def to_networkx(graph: Graph) -> "nx.Graph":
    """Convert to a networkx graph (for cross-validation and plotting)."""
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.vertices())
    nxg.add_edges_from(graph.edges())
    return nxg


def from_networkx(nxg: "nx.Graph") -> Graph:
    """Convert from networkx; directions, weights and self-loops are dropped."""
    graph = Graph()
    for node in nxg.nodes():
        graph.add_vertex(int(node))
    for u, v in nxg.edges():
        if u != v:
            graph.add_edge(int(u), int(v))
    return graph


def relabel_to_integers(graph: Graph) -> Tuple[Graph, dict]:
    """Relabel vertices to ``0..n-1`` (sorted order); return (graph, old->new)."""
    mapping = {old: new for new, old in enumerate(sorted(graph.vertices()))}
    relabeled = Graph.from_edges(
        ((mapping[u], mapping[v]) for u, v in graph.edges()),
        vertices=mapping.values(),
    )
    return relabeled, mapping
