"""Baseline detectors the paper compares against: SLPA (and LPA as sanity)."""

from repro.baselines.lpa import lpa_detect
from repro.baselines.slpa import SLPA, SLPAResult, slpa_detect
from repro.baselines.slpa_fast import FastSLPA, fast_slpa_detect

__all__ = [
    "SLPA",
    "SLPAResult",
    "slpa_detect",
    "FastSLPA",
    "fast_slpa_detect",
    "lpa_detect",
]
