"""Plain Label Propagation Algorithm (LPA) — disjoint-community baseline.

Raghavan et al. 2007 (ref. [23] of the paper): every vertex holds a single
label, repeatedly replaced by the plurality label among its neighbours until
a fixpoint (or an iteration cap).  LPA detects *disjoint* communities only —
it is included as the related-work sanity baseline: on graphs with genuinely
overlapping structure, SLPA/rSLPA should beat it on overlapping NMI.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.core.communities import Cover
from repro.core.randomness import draw_src_index, slot_hash
from repro.graph.adjacency import Graph
from repro.utils.validation import check_positive, check_type

__all__ = ["lpa_detect"]

_LPA = 0x4C50_4100  # domain separator


def lpa_detect(graph: Graph, seed: int = 0, max_iterations: int = 100) -> Cover:
    """Asynchronous LPA with uniform tie-breaking; returns a disjoint cover.

    Vertices are swept in a seeded random order each iteration and read the
    *current* labels of their neighbours (Raghavan et al.'s asynchronous
    scheme — the synchronous variant oscillates on bipartite structures).
    Stops as soon as a full sweep changes nothing, or after
    ``max_iterations``.  Singleton groups are dropped, matching how the
    other detectors treat isolated vertices.
    """
    check_type(seed, int, "seed")
    check_type(max_iterations, int, "max_iterations")
    check_positive(max_iterations, "max_iterations")
    labels: Dict[int, int] = {v: v for v in graph.vertices()}
    sorted_nbrs: Dict[int, List[int]] = {
        v: sorted(graph.neighbors_view(v)) for v in graph.vertices()
    }
    order = sorted(graph.vertices())
    for t in range(1, max_iterations + 1):
        # Seeded per-iteration shuffle (Fisher-Yates over the slot hashes).
        order.sort(key=lambda v: slot_hash(seed ^ _LPA, v, t, 1))
        changed = False
        for v in order:
            nbrs = sorted_nbrs[v]
            if not nbrs:
                continue
            counts = Counter(labels[u] for u in nbrs)
            best = max(counts.values())
            winners = sorted(l for l, c in counts.items() if c == best)
            if len(winners) == 1:
                new = winners[0]
            elif labels[v] in winners:
                new = labels[v]  # stickiness on ties aids convergence
            else:
                h = slot_hash(seed ^ _LPA, v, t, 0)
                new = winners[draw_src_index(h, len(winners))]
            if new != labels[v]:
                changed = True
                labels[v] = new
        if not changed:
            break
    groups: Dict[int, set] = {}
    for v, label in labels.items():
        groups.setdefault(label, set()).add(v)
    return Cover(g for g in groups.values() if len(g) >= 2)
