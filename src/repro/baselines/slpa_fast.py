"""Vectorised SLPA — numpy implementation of the voting baseline.

Semantically identical to :class:`repro.baselines.slpa.SLPA` (same speaker
draws, same plurality selection with uniform tie-breaking, same counter-based
randomness), but one iteration costs a handful of numpy passes over the
directed-edge arrays instead of a Python loop over every (listener, speaker)
pair.  The test-suite asserts bit-equality with the reference SLPA.

The plurality mode per listener is computed without Python loops:

1. every directed edge (speaker -> listener) carries its spoken label;
2. ``lexsort`` groups (listener, label) runs; run lengths are the vote
   counts;
3. a per-run score ``count * 2^20 + tiebreak_hash`` is lex-sorted within each
   listener, and the last run per listener wins — the tiebreak hash matches
   the reference implementation's uniform pick among maximal labels only in
   *distribution*, so bit-equality with the reference engine is guaranteed by
   sharing the exact same tie-break draw (see ``_tie_break``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.baselines.slpa import _SEND, _TIE, DEFAULT_ITERATIONS, DEFAULT_THRESHOLD
from repro.core.communities import Cover
from repro.core.randomness import (
    _C_SRC,
    _np_mix64,
    draw_position_array,
    slot_hash_array,
)
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_positive, check_probability, check_type

__all__ = ["FastSLPA", "fast_slpa_detect"]


class FastSLPA:
    """Vectorised speaker-listener propagation over a static snapshot.

    Accepts either a mutable :class:`Graph` (snapshotted to a
    :class:`CSRGraph`) or a ready-made :class:`CSRGraph`.
    """

    def __init__(
        self,
        graph: Union[Graph, CSRGraph],
        seed: int = 0,
        iterations: int = DEFAULT_ITERATIONS,
        threshold: float = DEFAULT_THRESHOLD,
    ):
        check_type(seed, int, "seed")
        check_type(iterations, int, "iterations")
        check_positive(iterations, "iterations")
        check_probability(threshold, "threshold")
        self.graph = graph
        self.seed = seed
        self.iterations = iterations
        self.threshold = threshold
        self.csr = CSRGraph.coerce(graph)
        self.indptr, self.indices = self.csr.indptr, self.csr.indices
        self.n = self.csr.num_vertices
        degrees = np.diff(self.indptr)
        # Directed-edge arrays: listeners[e] receives from speakers[e].
        self.listeners = np.repeat(np.arange(self.n, dtype=np.int64), degrees)
        self.speakers = self.indices
        self.zero_degree = degrees == 0
        self.memory = np.arange(self.n, dtype=np.int64)[np.newaxis, :].copy()
        self._t = 0
        # The reference implementation keys the speaker draw by
        # speaker * 0x1F1F1F1F + listener; precompute that composite id.
        self._edge_key = self.speakers * np.int64(0x1F1F1F1F) + self.listeners

    @property
    def num_iterations(self) -> int:
        return self._t

    def _tie_break(self, listeners_with_ties: np.ndarray, t: int) -> np.ndarray:
        """The reference tie-break draw (index into the sorted winner list)."""
        # Matches slpa.SLPA: h = slot_hash(seed ^ _TIE, listener, t, 0).
        return slot_hash_array(self.seed ^ _TIE, listeners_with_ties, t, 0)

    def propagate(self, iterations: Optional[int] = None) -> np.ndarray:
        remaining = self.iterations if iterations is None else iterations
        for _ in range(remaining):
            self._t += 1
            t = self._t
            # --- label sending: one spoken label per directed edge --------
            h = slot_hash_array(self.seed ^ _SEND, self._edge_key, t, 0)
            pos = draw_position_array(h, t)
            spoken = self.memory[pos, self.speakers]

            # --- plurality selection per listener --------------------------
            order = np.lexsort((spoken, self.listeners))
            sorted_listener = self.listeners[order]
            sorted_label = spoken[order]
            new_run = np.empty(len(order), dtype=bool)
            if len(order):
                new_run[0] = True
                new_run[1:] = (sorted_listener[1:] != sorted_listener[:-1]) | (
                    sorted_label[1:] != sorted_label[:-1]
                )
            run_starts = np.flatnonzero(new_run)
            run_listener = sorted_listener[run_starts]
            run_label = sorted_label[run_starts]
            run_counts = np.diff(np.append(run_starts, len(order)))

            # Max votes per listener.
            listener_first_run = np.empty(len(run_starts), dtype=bool)
            if len(run_starts):
                listener_first_run[0] = True
                listener_first_run[1:] = run_listener[1:] != run_listener[:-1]
            group_starts = np.flatnonzero(listener_first_run)
            max_per_group = np.maximum.reduceat(run_counts, group_starts) if len(
                group_starts
            ) else np.array([], dtype=run_counts.dtype)
            group_index = np.cumsum(listener_first_run) - 1
            is_winner = run_counts == max_per_group[group_index]

            # Winners per listener, in ascending label order (runs are label
            # sorted within a listener): rank each winner within its group.
            winner_rows = np.flatnonzero(is_winner)
            winner_listener = run_listener[winner_rows]
            winner_label = run_label[winner_rows]
            # Group boundaries among winners.
            first_winner = np.empty(len(winner_rows), dtype=bool)
            if len(winner_rows):
                first_winner[0] = True
                first_winner[1:] = winner_listener[1:] != winner_listener[:-1]
            winner_group_start = np.flatnonzero(first_winner)
            winners_per_listener = np.diff(
                np.append(winner_group_start, len(winner_rows))
            )
            rank_in_group = np.arange(len(winner_rows)) - np.repeat(
                winner_group_start, winners_per_listener
            )

            # Reference tie-break: index = mix(h_tie) % num_winners.
            unique_listeners = winner_listener[winner_group_start]
            tie_h = self._tie_break(unique_listeners, t)
            # draw_src_index(h, k) vectorised: mix64(h ^ C_SRC) % k.
            chosen_rank = (
                _np_mix64(tie_h ^ np.uint64(_C_SRC))
                % winners_per_listener.astype(np.uint64)
            ).astype(np.int64)
            picked_mask = rank_in_group == np.repeat(chosen_rank, winners_per_listener)
            picked_labels = winner_label[picked_mask]
            picked_listeners = winner_listener[picked_mask]

            new_row = self.memory[0].copy()  # degree-0 fallback: own label
            new_row[picked_listeners] = picked_labels
            self.memory = np.vstack([self.memory, new_row])
        return self.memory

    # ------------------------------------------------------------------
    # Thresholding
    # ------------------------------------------------------------------
    def extract(self, threshold: Optional[float] = None) -> Cover:
        """Same τ-thresholding as the reference SLPA."""
        tau = self.threshold if threshold is None else threshold
        check_probability(tau, "threshold")
        length = self.memory.shape[0]
        min_count = tau * length
        holders: Dict[int, set] = {}
        mem = self.memory
        for v in range(self.n):
            column = mem[:, v]
            labels, counts = np.unique(column, return_counts=True)
            for label, count in zip(labels.tolist(), counts.tolist()):
                if count >= min_count:
                    holders.setdefault(label, set()).add(v)
        return Cover(c for c in holders.values() if len(c) >= 2)

    def memories_as_dict(self) -> Dict[int, List[int]]:
        """Memories in the reference engine's format (for equality tests)."""
        return {v: self.memory[:, v].tolist() for v in range(self.n)}


def fast_slpa_detect(
    graph: Graph,
    seed: int = 0,
    iterations: int = DEFAULT_ITERATIONS,
    threshold: float = DEFAULT_THRESHOLD,
) -> Cover:
    """One-shot vectorised SLPA detection."""
    engine = FastSLPA(graph, seed=seed, iterations=iterations, threshold=threshold)
    engine.propagate()
    return engine.extract()
