"""SLPA baseline — the original Speaker-Listener Label Propagation Algorithm.

Section II-B of the paper (following Xie & Szymanski, PAKDD 2012).  Per
iteration, synchronously:

1. **label sending** — every vertex speaks one label, uniformly drawn from
   its current memory, to *each* neighbour (O(|E|) labels per iteration —
   the communication cost rSLPA improves on);
2. **label selection** — every listener appends the most frequent received
   label, ties broken uniformly (the plurality voting of Figure 2).

After ``T`` iterations, memories of length ``T+1`` are thresholded: labels
whose relative frequency is below ``τ`` are dropped, and each surviving
label's holders form one community (the paper uses τ = 0.2 ≈ 1/om).

Randomness is counter-based per (speaker, listener, iteration), so results
are reproducible and partition-independent, exactly like the rSLPA engines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.communities import Cover
from repro.core.randomness import draw_position, draw_src_index, slot_hash
from repro.graph.adjacency import Graph
from repro.utils.validation import check_positive, check_probability, check_type

__all__ = ["SLPA", "slpa_detect"]

#: Paper defaults for the baseline (Section V-A2).
DEFAULT_ITERATIONS = 100
DEFAULT_THRESHOLD = 0.2

# Domain separators for SLPA's two random sub-steps.
_SEND = 0x5350_4131  # "SPA1"
_TIE = 0x5350_4132  # "SPA2"


@dataclass
class SLPAResult:
    """Memories plus the extracted cover."""

    memories: Dict[int, List[int]]
    cover: Cover
    threshold: float


class SLPA:
    """The voting-based baseline, synchronous speaker-listener variant."""

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        iterations: int = DEFAULT_ITERATIONS,
        threshold: float = DEFAULT_THRESHOLD,
    ):
        check_type(seed, int, "seed")
        check_type(iterations, int, "iterations")
        check_positive(iterations, "iterations")
        check_probability(threshold, "threshold")
        self.graph = graph
        self.seed = seed
        self.iterations = iterations
        self.threshold = threshold
        self.memories: Dict[int, List[int]] = {v: [v] for v in graph.vertices()}
        self._t = 0
        self._sorted_nbrs: Dict[int, List[int]] = {
            v: sorted(graph.neighbors_view(v)) for v in graph.vertices()
        }

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _spoken_label(self, speaker: int, listener: int, t: int) -> int:
        """The label ``speaker`` sends to ``listener`` at iteration ``t``."""
        h = slot_hash(self.seed ^ _SEND, speaker * 0x1F1F1F1F + listener, t, 0)
        pos = draw_position(h, t)  # memory has length t at iteration t
        return self.memories[speaker][pos]

    def propagate(self, iterations: Optional[int] = None) -> Dict[int, List[int]]:
        """Run the speaker-listener process for ``iterations`` supersteps."""
        remaining = self.iterations if iterations is None else iterations
        for _ in range(remaining):
            self._t += 1
            t = self._t
            appended: List[Tuple[int, int]] = []
            for listener, nbrs in self._sorted_nbrs.items():
                if not nbrs:
                    appended.append((listener, self.memories[listener][0]))
                    continue
                received = Counter(
                    self._spoken_label(speaker, listener, t) for speaker in nbrs
                )
                best = max(received.values())
                winners = sorted(
                    label for label, count in received.items() if count == best
                )
                if len(winners) == 1:
                    appended.append((listener, winners[0]))
                else:
                    h = slot_hash(self.seed ^ _TIE, listener, t, 0)
                    appended.append(
                        (listener, winners[draw_src_index(h, len(winners))])
                    )
            # Synchronous commit: memories grow only after all selections.
            for listener, label in appended:
                self.memories[listener].append(label)
        return self.memories

    # ------------------------------------------------------------------
    # Thresholding (the SLPA post-processing)
    # ------------------------------------------------------------------
    def extract(self, threshold: Optional[float] = None) -> Cover:
        """Per-vertex frequency thresholding at ``τ``; holders of a common
        surviving label form one community (singletons dropped)."""
        tau = self.threshold if threshold is None else threshold
        check_probability(tau, "threshold")
        holders: Dict[int, set] = {}
        for v, memory in self.memories.items():
            length = len(memory)
            for label, count in Counter(memory).items():
                if count / length >= tau:
                    holders.setdefault(label, set()).add(v)
        return Cover(c for c in holders.values() if len(c) >= 2)

    def run(self) -> SLPAResult:
        """Propagate for the configured horizon and extract the cover."""
        self.propagate()
        return SLPAResult(
            memories=self.memories, cover=self.extract(), threshold=self.threshold
        )


def slpa_detect(
    graph: Graph,
    seed: int = 0,
    iterations: int = DEFAULT_ITERATIONS,
    threshold: float = DEFAULT_THRESHOLD,
) -> Cover:
    """One-shot SLPA detection with the paper's defaults (T=100, τ=0.2)."""
    return SLPA(graph, seed=seed, iterations=iterations, threshold=threshold).run().cover
