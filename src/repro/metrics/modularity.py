"""Modularity metrics: Newman's Q and an overlapping extension.

Section II of the paper notes that modularity — the most widely used
community objective — "has some limitations" [16], which is why the
evaluation uses NMI against ground truth instead.  Modularity remains
useful as a ground-truth-free diagnostic, so the test-suite and ablations
report it alongside NMI:

* :func:`modularity` — Newman-Girvan Q for disjoint partitions;
* :func:`overlapping_modularity` — the membership-normalised extension
  (Shen et al. 2009): each vertex's contribution is split evenly across its
  ``O_v`` memberships, ``Q_ov = (1/2m) Σ_c Σ_{u,v∈c} (1/(O_u O_v)) ·
  (A_uv − d_u d_v / 2m)``.
"""

from __future__ import annotations

from typing import Collection, Dict, Sequence

from repro.graph.adjacency import Graph

__all__ = ["modularity", "overlapping_modularity"]


def modularity(graph: Graph, partition: Sequence[Collection[int]]) -> float:
    """Newman-Girvan modularity of a disjoint partition.

    Raises ``ValueError`` if any vertex appears in two communities (use
    :func:`overlapping_modularity` for covers).  Vertices missing from the
    partition contribute nothing.
    """
    seen = set()
    for community in partition:
        for v in community:
            if v in seen:
                raise ValueError(
                    f"vertex {v} is in several communities; "
                    "use overlapping_modularity for covers"
                )
            seen.add(v)
    m = graph.num_edges
    if m == 0:
        return 0.0
    total = 0.0
    for community in partition:
        members = {v for v in community if graph.has_vertex(v)}
        internal_half_edges = 0
        degree_sum = 0
        for v in members:
            degree_sum += graph.degree(v)
            for u in graph.neighbors_view(v):
                if u in members:
                    internal_half_edges += 1
        total += internal_half_edges / (2.0 * m) - (degree_sum / (2.0 * m)) ** 2
    return total


def overlapping_modularity(graph: Graph, cover: Sequence[Collection[int]]) -> float:
    """Membership-normalised modularity for overlapping covers (Shen 2009)."""
    m = graph.num_edges
    if m == 0:
        return 0.0
    membership_count: Dict[int, int] = {}
    for community in cover:
        for v in community:
            if graph.has_vertex(v):
                membership_count[v] = membership_count.get(v, 0) + 1
    total = 0.0
    two_m = 2.0 * m
    for community in cover:
        members = [v for v in community if graph.has_vertex(v)]
        member_set = set(members)
        for v in members:
            o_v = membership_count[v]
            d_v = graph.degree(v)
            for u in members:
                o_u = membership_count[u]
                a_uv = 1.0 if u in graph.neighbors_view(v) else 0.0
                if u == v:
                    a_uv = 0.0
                total += (a_uv - d_v * graph.degree(u) / two_m) / (o_v * o_u)
        # Guard against quadratic blowups on huge communities: the formula
        # above is O(|c|^2); callers should not pass covers with communities
        # beyond a few thousand members.
        if len(member_set) > 5000:
            raise ValueError(
                f"community of size {len(member_set)} too large for the "
                "O(|c|^2) overlapping-modularity computation"
            )
    return total / two_m
