"""Normalized Mutual Information for overlapping covers (LFK variant).

The paper's quality metric (Section V-A2) is the NMI for covers introduced
by Lancichinetti, Fortunato & Kertész (2009) — the standard choice when the
ground truth is *overlapping*.  Each community is treated as a binary random
variable over the vertex universe; the conditional entropy between two
covers is the normalised best-match conditional entropy, subject to the LFK
acceptance constraint that guards against spurious matches between a
community and the complement of another.

``nmi_overlapping(x, y, n)`` is symmetric, returns values in [0, 1], and
equals 1 exactly for identical covers.
"""

from __future__ import annotations

import math
from typing import Collection, Iterable, List, Sequence, Set

__all__ = ["nmi_overlapping", "cover_entropy_bits"]


def _h(p: float) -> float:
    """Entropy contribution ``-p log2 p`` with the 0 log 0 = 0 convention."""
    if p <= 0.0:
        return 0.0
    return -p * math.log2(p)


def _community_entropy(size: int, n: int) -> float:
    """Entropy in bits of one community's membership indicator."""
    p = size / n
    return _h(p) + _h(1.0 - p)


def cover_entropy_bits(cover: Sequence[Collection[int]], n: int) -> float:
    """Sum of per-community indicator entropies, H(X) in the LFK sense."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return sum(_community_entropy(len(c), n) for c in cover)


def _conditional_entropy_term(
    xk: Set[int], yl: Set[int], n: int
) -> float:
    """H(X_k | Y_l) in bits, or ``inf`` if the LFK constraint rejects the pair.

    With joint probabilities p11 = |X∩Y|/n etc., the pair is accepted only if
    ``h(p11) + h(p00) >= h(p01) + h(p10)``; otherwise Y_l is considered a
    better match for the complement of X_k and must not be used.
    """
    inter = len(xk & yl)
    p11 = inter / n
    p10 = (len(xk) - inter) / n
    p01 = (len(yl) - inter) / n
    p00 = 1.0 - p11 - p10 - p01
    if _h(p11) + _h(p00) < _h(p01) + _h(p10):
        return math.inf
    joint = _h(p11) + _h(p10) + _h(p01) + _h(p00)
    h_y = _h(p11 + p01) + _h(p10 + p00)
    return joint - h_y


def _normalized_conditional_entropy(
    x: Sequence[Set[int]], y: Sequence[Set[int]], n: int
) -> float:
    """H(X|Y)_norm = mean over k of H(X_k|Y) / H(X_k), per LFK."""
    if not x:
        return 0.0
    total = 0.0
    for xk in x:
        h_xk = _community_entropy(len(xk), n)
        if h_xk == 0.0:
            # A community equal to the empty set or the whole universe carries
            # no information; its normalised conditional entropy is 0.
            continue
        best = math.inf
        for yl in y:
            term = _conditional_entropy_term(xk, yl, n)
            if term < best:
                best = term
        if best is math.inf or best == math.inf:
            best = h_xk  # no accepted match: maximal (normalised to 1)
        total += min(best, h_xk) / h_xk
    return total / len(x)


def nmi_overlapping(
    cover_a: Iterable[Collection[int]],
    cover_b: Iterable[Collection[int]],
    num_vertices: int,
) -> float:
    """LFK Normalized Mutual Information between two covers.

    ``num_vertices`` is the size of the vertex universe both covers live on
    (vertices may be missing from either cover — common after thresholding).

    >>> nmi_overlapping([{0, 1}, {2, 3}], [{0, 1}, {2, 3}], 4)
    1.0
    """
    if num_vertices <= 0:
        raise ValueError(f"num_vertices must be positive, got {num_vertices}")
    x: List[Set[int]] = [set(c) for c in cover_a if len(c) > 0]
    y: List[Set[int]] = [set(c) for c in cover_b if len(c) > 0]
    if not x and not y:
        return 1.0
    if not x or not y:
        return 0.0
    for cover, name in ((x, "cover_a"), (y, "cover_b")):
        for community in cover:
            if len(community) > num_vertices:
                raise ValueError(
                    f"{name} has a community larger than the universe "
                    f"({len(community)} > {num_vertices})"
                )
    h_x_given_y = _normalized_conditional_entropy(x, y, num_vertices)
    h_y_given_x = _normalized_conditional_entropy(y, x, num_vertices)
    value = 1.0 - 0.5 * (h_x_given_y + h_y_given_x)
    # Clamp tiny numerical excursions.
    return min(1.0, max(0.0, value))
