"""Evaluation metrics: overlapping NMI (LFK), omega, F1, conductance, entropy."""

from repro.metrics.entropy import size_entropy, size_entropy_from_sizes
from repro.metrics.modularity import modularity, overlapping_modularity
from repro.metrics.nmi import cover_entropy_bits, nmi_overlapping
from repro.metrics.quality import (
    average_conductance,
    conductance,
    coverage,
    omega_index,
    overlapping_f1,
    pairwise_cooccurrence_counts,
)

__all__ = [
    "nmi_overlapping",
    "cover_entropy_bits",
    "size_entropy",
    "size_entropy_from_sizes",
    "omega_index",
    "overlapping_f1",
    "conductance",
    "average_conductance",
    "coverage",
    "pairwise_cooccurrence_counts",
    "modularity",
    "overlapping_modularity",
]
