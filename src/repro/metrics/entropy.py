"""Community-size information entropy (Equation 1 of the paper).

The post-processing stage picks the strong threshold τ1 to maximise

    entropy = - Σ_i (|C_i| / |V|) · log(|C_i| / |V|)

over the extracted communities.  Both the τ1 sweep in
``repro.core.postprocess`` and the ablation benches use these helpers.
"""

from __future__ import annotations

import math
from typing import Collection, Iterable, Sequence

__all__ = ["size_entropy", "size_entropy_from_sizes"]


def size_entropy_from_sizes(sizes: Iterable[int], num_vertices: int) -> float:
    """Entropy (natural log) of relative community sizes.

    Sizes need not sum to ``num_vertices`` — vertices outside every
    community simply contribute nothing, matching Eq. 1 where the sum runs
    over extracted communities only.
    """
    if num_vertices <= 0:
        raise ValueError(f"num_vertices must be positive, got {num_vertices}")
    total = 0.0
    for size in sizes:
        if size < 0:
            raise ValueError(f"community size must be >= 0, got {size}")
        if size == 0:
            continue
        p = size / num_vertices
        total -= p * math.log(p)
    return total


def size_entropy(communities: Sequence[Collection[int]], num_vertices: int) -> float:
    """Eq. 1 applied to a concrete list of communities."""
    return size_entropy_from_sizes((len(c) for c in communities), num_vertices)
