"""Additional cover-quality metrics: omega index, overlapping F1, conductance.

The paper reports NMI only, but these metrics are standard companions when
comparing overlapping covers; the test-suite and ablation benches use them
as independent cross-checks (a detector that scores well on NMI but terribly
on omega/F1 would indicate a metric bug rather than detection quality).
"""

from __future__ import annotations

from itertools import combinations
from typing import Collection, Dict, FrozenSet, Iterable, List, Sequence, Set

from repro.graph.adjacency import Graph

__all__ = [
    "omega_index",
    "overlapping_f1",
    "conductance",
    "average_conductance",
    "coverage",
    "pairwise_cooccurrence_counts",
]


def pairwise_cooccurrence_counts(
    cover: Iterable[Collection[int]],
) -> Dict[FrozenSet[int], int]:
    """Map vertex pair -> number of communities containing both.

    Quadratic per community; intended for the modest community sizes of the
    tests and ablations, not for full-scale graphs.
    """
    counts: Dict[FrozenSet[int], int] = {}
    for community in cover:
        for u, v in combinations(sorted(set(community)), 2):
            key = frozenset((u, v))
            counts[key] = counts.get(key, 0) + 1
    return counts


def omega_index(
    cover_a: Sequence[Collection[int]],
    cover_b: Sequence[Collection[int]],
    num_vertices: int,
) -> float:
    """Omega index: chance-corrected agreement on pair co-membership counts.

    Generalises the Adjusted Rand Index to overlapping covers: two covers
    agree on a pair when the pair co-occurs in the *same number* of
    communities in both.
    """
    if num_vertices < 2:
        raise ValueError(f"need at least 2 vertices, got {num_vertices}")
    total_pairs = num_vertices * (num_vertices - 1) // 2
    counts_a = pairwise_cooccurrence_counts(cover_a)
    counts_b = pairwise_cooccurrence_counts(cover_b)

    # Observed agreement.
    agree = 0
    for pair, ka in counts_a.items():
        if counts_b.get(pair, 0) == ka:
            agree += 1
    # Pairs appearing in neither cover agree at multiplicity 0.
    union_pairs = set(counts_a) | set(counts_b)
    zero_zero = total_pairs - len(union_pairs)
    # Pairs in b only (a has 0) never agree unless b count is 0 (impossible).
    observed = (agree + zero_zero) / total_pairs

    # Expected agreement under independent multiplicity distributions.
    def multiplicity_histogram(counts: Dict[FrozenSet[int], int]) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for value in counts.values():
            hist[value] = hist.get(value, 0) + 1
        hist[0] = total_pairs - len(counts)
        return hist

    hist_a = multiplicity_histogram(counts_a)
    hist_b = multiplicity_histogram(counts_b)
    expected = sum(
        hist_a.get(level, 0) * hist_b.get(level, 0)
        for level in set(hist_a) | set(hist_b)
    ) / (total_pairs * total_pairs)

    if expected >= 1.0:
        return 1.0 if observed >= 1.0 else 0.0
    return (observed - expected) / (1.0 - expected)


def _f1(set_a: Set[int], set_b: Set[int]) -> float:
    """Plain F1 between two vertex sets."""
    if not set_a or not set_b:
        return 0.0
    inter = len(set_a & set_b)
    if inter == 0:
        return 0.0
    precision = inter / len(set_b)
    recall = inter / len(set_a)
    return 2 * precision * recall / (precision + recall)


def overlapping_f1(
    detected: Sequence[Collection[int]],
    truth: Sequence[Collection[int]],
) -> float:
    """Average best-match F1, symmetrised (the "average F1" of the literature).

    ``0.5 * (mean_d max_t F1(d, t) + mean_t max_d F1(t, d))``.
    """
    det: List[Set[int]] = [set(c) for c in detected if c]
    tru: List[Set[int]] = [set(c) for c in truth if c]
    if not det and not tru:
        return 1.0
    if not det or not tru:
        return 0.0

    def one_sided(from_cover: List[Set[int]], to_cover: List[Set[int]]) -> float:
        return sum(max(_f1(c, other) for other in to_cover) for c in from_cover) / len(
            from_cover
        )

    return 0.5 * (one_sided(det, tru) + one_sided(tru, det))


def conductance(graph: Graph, community: Collection[int]) -> float:
    """Conductance of a vertex set: cut edges / min(volume, complement volume).

    Lower is better; 0 means no boundary edges.  Returns 1.0 for degenerate
    sets (empty, full, or zero-volume).
    """
    members = {v for v in community if graph.has_vertex(v)}
    if not members or len(members) >= graph.num_vertices:
        return 1.0
    volume = 0
    cut = 0
    for v in members:
        for u in graph.neighbors_view(v):
            volume += 1
            if u not in members:
                cut += 1
    complement_volume = 2 * graph.num_edges - volume
    denom = min(volume, complement_volume)
    if denom == 0:
        return 1.0
    return cut / denom


def average_conductance(graph: Graph, cover: Sequence[Collection[int]]) -> float:
    """Mean conductance over the communities of a cover (1.0 if empty)."""
    communities = [c for c in cover if c]
    if not communities:
        return 1.0
    return sum(conductance(graph, c) for c in communities) / len(communities)


def coverage(cover: Sequence[Collection[int]], num_vertices: int) -> float:
    """Fraction of the vertex universe assigned to at least one community."""
    if num_vertices <= 0:
        raise ValueError(f"num_vertices must be positive, got {num_vertices}")
    covered: Set[int] = set()
    for community in cover:
        covered.update(community)
    return len(covered) / num_vertices
