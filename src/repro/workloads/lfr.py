"""LFR benchmark generator with overlapping communities.

The paper evaluates community quality on graphs from the LFR benchmark
(Lancichinetti & Fortunato 2009, ref. [19]), using the parameters of
Table I: ``N`` (vertices), ``k`` (average degree), ``maxk`` (max degree),
``mu`` (mixing), ``on`` (number of overlapping vertices) and ``om``
(memberships per overlapping vertex).  networkx ships an LFR generator but
it cannot produce *overlapping* ground truth, so this module implements the
benchmark from scratch:

1. degrees are drawn from a truncated power law whose lower cutoff is
   bisected so the realised mean matches ``k`` (exponent ``tau1``);
2. community sizes are drawn from a power law (exponent ``tau2``) until the
   total capacity equals the total number of memberships
   ``N - on + on*om``;
3. memberships are assigned by random placement with kick-out, under the
   constraint that a vertex's per-community internal degree must fit inside
   the community;
4. each vertex splits its degree into an internal part ``(1-mu)*d`` (divided
   evenly across its memberships) and an external part ``mu*d``; intra- and
   inter-community edges are realised with configuration-model matching plus
   conflict repair.

The generator returns both the graph and the ground-truth cover, exactly
what the NMI evaluation of Section V-A needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.adjacency import Graph
from repro.utils.rng import derive_rng
from repro.utils.validation import check_fraction, check_positive, check_type

__all__ = ["LFRParams", "LFRGraph", "generate_lfr", "solve_power_law_xmin"]


@dataclass(frozen=True)
class LFRParams:
    """Parameters of the LFR benchmark (Table I of the paper).

    ``overlap_fraction`` is the paper's ``on`` expressed as a fraction of
    ``n`` (the paper default is ``on = 0.1 N``); ``overlap_membership`` is
    ``om``.  ``min_community``/``max_community`` default to values derived
    from the degree bounds so every internal-degree quota can fit.
    """

    n: int = 1000
    avg_degree: float = 16.0
    max_degree: int = 40
    mu: float = 0.1
    overlap_fraction: float = 0.1
    overlap_membership: int = 2
    tau1: float = 2.0
    tau2: float = 1.0
    min_community: Optional[int] = None
    max_community: Optional[int] = None

    def __post_init__(self):
        check_type(self.n, int, "n")
        check_positive(self.n, "n")
        check_positive(self.avg_degree, "avg_degree")
        check_type(self.max_degree, int, "max_degree")
        check_positive(self.max_degree, "max_degree")
        check_fraction(self.mu, "mu")
        if not 0 <= self.overlap_fraction < 1:
            raise ValueError(
                f"overlap_fraction must be in [0, 1), got {self.overlap_fraction}"
            )
        check_type(self.overlap_membership, int, "overlap_membership")
        check_positive(self.overlap_membership, "overlap_membership")
        if self.avg_degree >= self.max_degree:
            raise ValueError(
                f"avg_degree={self.avg_degree} must be < max_degree={self.max_degree}"
            )
        if self.max_degree >= self.n:
            raise ValueError(f"max_degree={self.max_degree} must be < n={self.n}")

    @property
    def num_overlapping(self) -> int:
        """The paper's ``on``: number of overlapping vertices."""
        return int(round(self.overlap_fraction * self.n))

    @property
    def total_memberships(self) -> int:
        """Total community slots: ``n - on + on * om``."""
        on = self.num_overlapping
        return self.n - on + on * self.overlap_membership

    def community_size_bounds(self) -> Tuple[int, int]:
        """Resolve (min_community, max_community) defaults.

        A community must be able to host the per-community internal degree
        of its largest member: a non-overlapping vertex of degree ``maxk``
        needs ``(1-mu)*maxk`` internal neighbours, hence the floor below.
        """
        need = int(math.ceil((1.0 - self.mu) * self.max_degree)) + 1
        cmin = self.min_community if self.min_community is not None else max(
            need, int(math.ceil(self.avg_degree))
        )
        cmax = self.max_community if self.max_community is not None else max(
            2 * cmin, int(math.ceil(2.5 * need))
        )
        if cmin < 2:
            raise ValueError(f"min_community must be >= 2, got {cmin}")
        if cmax < cmin:
            raise ValueError(f"max_community={cmax} < min_community={cmin}")
        if cmax > self.total_memberships:
            cmax = self.total_memberships
        return cmin, cmax


@dataclass
class LFRGraph:
    """Output of the LFR generator: graph plus overlapping ground truth."""

    graph: Graph
    communities: List[Set[int]]
    memberships: Dict[int, List[int]]
    params: LFRParams
    internal_quota: Dict[int, int] = field(default_factory=dict)

    @property
    def overlapping_vertices(self) -> Set[int]:
        return {v for v, ms in self.memberships.items() if len(ms) > 1}

    def empirical_mu(self) -> float:
        """Fraction of edge endpoints that cross community boundaries.

        For each edge, an endpoint is *external* if the two vertices share no
        community.  Matches the LFR definition of realised mixing.
        """
        internal = 0
        total = 0
        member_sets = {v: set(ms) for v, ms in self.memberships.items()}
        for u, v in self.graph.edges():
            total += 1
            if member_sets.get(u, set()) & member_sets.get(v, set()):
                internal += 1
        if total == 0:
            return 0.0
        return 1.0 - internal / total


def solve_power_law_xmin(
    target_mean: float, exponent: float, xmax: float, tol: float = 1e-9
) -> float:
    """Find ``xmin`` so a continuous power law on [xmin, xmax] has the mean.

    For density ``p(x) ∝ x^-exponent`` the mean is a monotone function of
    ``xmin``, so plain bisection suffices.
    """
    check_positive(target_mean, "target_mean")
    check_positive(xmax, "xmax")
    if target_mean >= xmax:
        raise ValueError(f"target_mean={target_mean} must be < xmax={xmax}")

    def mean_for(xmin: float) -> float:
        t = exponent
        if abs(t - 1.0) < 1e-12:
            norm = math.log(xmax / xmin)
            raw = xmax - xmin
            return raw / norm
        if abs(t - 2.0) < 1e-12:
            norm = (xmin ** (1 - t) - xmax ** (1 - t)) / (t - 1)
            raw = math.log(xmax / xmin)
            return raw / norm
        norm = (xmin ** (1 - t) - xmax ** (1 - t)) / (t - 1)
        raw = (xmax ** (2 - t) - xmin ** (2 - t)) / (2 - t)
        return raw / norm

    lo, hi = 1e-6, xmax - 1e-9
    if mean_for(hi) < target_mean:  # pragma: no cover - guarded by params check
        raise ValueError("target mean unreachable")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if mean_for(mid) < target_mean:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)


def _sample_power_law(rng, xmin: float, xmax: float, exponent: float) -> float:
    """Inverse-CDF sample from a continuous truncated power law."""
    t = exponent
    u = rng.random()
    if abs(t - 1.0) < 1e-12:
        return xmin * (xmax / xmin) ** u
    a = xmin ** (1 - t)
    b = xmax ** (1 - t)
    return (a + u * (b - a)) ** (1.0 / (1 - t))


def _sample_degrees(params: LFRParams, rng) -> List[int]:
    """Degree sequence matching ``avg_degree`` with max ``max_degree``."""
    xmin = solve_power_law_xmin(params.avg_degree, params.tau1, params.max_degree)
    xmin = max(xmin, 1.0)
    degrees = []
    for _ in range(params.n):
        x = _sample_power_law(rng, xmin, params.max_degree, params.tau1)
        degrees.append(min(params.max_degree, max(1, int(round(x)))))
    if sum(degrees) % 2 == 1:
        for i, d in enumerate(degrees):
            if d < params.max_degree:
                degrees[i] += 1
                break
    return degrees


def _sample_community_sizes(params: LFRParams, rng) -> List[int]:
    """Community sizes (power law, exponent tau2) summing to total memberships."""
    cmin, cmax = params.community_size_bounds()
    total = params.total_memberships
    if total < cmin:
        raise ValueError(
            f"total memberships {total} smaller than min community size {cmin}; "
            "increase n or decrease min_community"
        )
    sizes: List[int] = []
    acc = 0
    while acc < total:
        x = _sample_power_law(rng, cmin, cmax, params.tau2)
        size = min(cmax, max(cmin, int(round(x))))
        sizes.append(size)
        acc += size
    # Trim the overshoot: shrink communities (largest first) but never below
    # cmin; if the remainder cannot be absorbed, merge the smallest community
    # away.
    excess = acc - total
    while excess > 0:
        sizes.sort(reverse=True)
        shrunk = False
        for i, size in enumerate(sizes):
            room = size - cmin
            if room > 0:
                take = min(room, excess)
                sizes[i] -= take
                excess -= take
                shrunk = True
                if excess == 0:
                    break
        if not shrunk:
            # All communities at cmin: drop one and redistribute its slots.
            dropped = sizes.pop()
            excess -= dropped
            if excess < 0:
                # Redistribute the deficit onto the remaining communities.
                deficit = -excess
                for i in range(len(sizes)):
                    give = min(cmax - sizes[i], deficit)
                    sizes[i] += give
                    deficit -= give
                    if deficit == 0:
                        break
                if deficit > 0:
                    sizes.append(max(cmin, deficit))
                excess = 0
    if len(sizes) < 2:
        raise ValueError(
            "LFR parameters produce fewer than 2 communities; "
            "decrease community sizes or increase n"
        )
    return sizes


def _split_internal_quota(internal: int, parts: int) -> List[int]:
    """Split an internal-degree quota as evenly as possible across parts."""
    base, extra = divmod(internal, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def _assign_memberships(
    params: LFRParams,
    degrees: Sequence[int],
    sizes: Sequence[int],
    rng,
    max_rounds: int = 200,
) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
    """Assign each vertex to 1 or ``om`` communities by placement + kick-out.

    Returns ``(memberships, quotas)`` where ``quotas[v][j]`` is the internal
    degree vertex ``v`` must realise inside its ``j``-th community.  The
    invariant maintained is ``quotas[v][j] <= size(community) - 1``.
    """
    n = params.n
    om = params.overlap_membership
    overlapping = set(rng.sample(range(n), params.num_overlapping))
    internal_total = {
        v: min(int(round((1.0 - params.mu) * degrees[v])), degrees[v])
        for v in range(n)
    }
    member_count = {v: (om if v in overlapping else 1) for v in range(n)}
    quotas = {
        v: _split_internal_quota(internal_total[v], member_count[v]) for v in range(n)
    }

    num_communities = len(sizes)
    capacity = list(sizes)
    occupants: List[List[Tuple[int, int]]] = [[] for _ in range(num_communities)]
    assigned: Dict[int, List[int]] = {v: [] for v in range(n)}

    # Queue of (vertex, slot) placements still to make; hardest (largest
    # quota) first, which drastically reduces kick-out churn.
    pending: List[Tuple[int, int]] = [
        (v, j) for v in range(n) for j in range(member_count[v])
    ]
    pending.sort(key=lambda it: -quotas[it[0]][it[1]])

    rounds = 0
    while pending:
        rounds += 1
        if rounds > max_rounds * len(pending) + 10 * n * om:
            raise RuntimeError(
                "LFR membership assignment did not converge; "
                "community sizes are too tight for the degree sequence"
            )
        v, j = pending.pop()
        quota = quotas[v][j]
        candidates = [
            c
            for c in range(num_communities)
            if sizes[c] > quota and c not in assigned[v]
        ]
        if not candidates:
            raise RuntimeError(
                f"no community can host vertex {v} with internal quota {quota}; "
                "increase max_community or lower max_degree"
            )
        c = candidates[rng.randrange(len(candidates))]
        occupants[c].append((v, j))
        assigned[v].append(c)
        if len(occupants[c]) > capacity[c]:
            # Kick out a uniformly random occupant (possibly the newcomer).
            idx = rng.randrange(len(occupants[c]))
            kicked_v, kicked_j = occupants[c].pop(idx)
            assigned[kicked_v].remove(c)
            pending.append((kicked_v, kicked_j))
    return assigned, quotas


def _match_stubs(
    stubs: List[int],
    rng,
    forbidden: Optional[Set[Tuple[int, int]]] = None,
    repair_passes: int = 40,
) -> List[Tuple[int, int]]:
    """Configuration-model matching with conflict repair.

    ``stubs`` is a list of vertex ids, one entry per half-edge.  Pairs that
    would create self-loops, duplicates, or edges in ``forbidden`` are
    repaired by random pair swaps; irreparable leftovers are dropped.
    """
    forbidden = forbidden or set()
    stubs = list(stubs)
    rng.shuffle(stubs)
    if len(stubs) % 2 == 1:
        stubs.pop()
    pairs = [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]

    def canon(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def bad(u: int, v: int, seen: Set[Tuple[int, int]]) -> bool:
        return u == v or canon(u, v) in seen or canon(u, v) in forbidden

    for _ in range(repair_passes):
        seen: Set[Tuple[int, int]] = set()
        conflicts: List[int] = []
        for idx, (u, v) in enumerate(pairs):
            if bad(u, v, seen):
                conflicts.append(idx)
            else:
                seen.add(canon(u, v))
        if not conflicts:
            break
        # Swap each conflicted pair's second endpoint with a random pair.
        for idx in conflicts:
            other = rng.randrange(len(pairs))
            u1, v1 = pairs[idx]
            u2, v2 = pairs[other]
            pairs[idx] = (u1, v2)
            pairs[other] = (u2, v1)
    # Final filter: drop anything still conflicting.
    seen = set()
    result: List[Tuple[int, int]] = []
    for u, v in pairs:
        if bad(u, v, seen):
            continue
        seen.add(canon(u, v))
        result.append((u, v))
    return result


def generate_lfr(params: LFRParams, seed: int = 0) -> LFRGraph:
    """Generate an LFR benchmark graph with overlapping ground truth.

    >>> lfr = generate_lfr(LFRParams(n=300, avg_degree=10, max_degree=25), seed=1)
    >>> lfr.graph.num_vertices
    300
    >>> len(lfr.overlapping_vertices) == lfr.params.num_overlapping
    True
    """
    check_type(params, LFRParams, "params")
    rng = derive_rng(seed, "lfr", params.n, params.overlap_membership)

    degrees = _sample_degrees(params, rng)
    sizes = _sample_community_sizes(params, rng)
    memberships, quotas = _assign_memberships(params, degrees, sizes, rng)

    graph = Graph.from_edges((), vertices=range(params.n))
    num_communities = len(sizes)
    community_members: List[List[int]] = [[] for _ in range(num_communities)]
    for v, comms in memberships.items():
        for c in comms:
            community_members[c].append(v)

    # --- intra-community edges -------------------------------------------
    realised_internal = {v: 0 for v in range(params.n)}
    for c in range(num_communities):
        stubs: List[int] = []
        for v in community_members[c]:
            j = memberships[v].index(c)
            stubs.extend([v] * quotas[v][j])
        existing = {
            (min(u, w), max(u, w))
            for u in community_members[c]
            for w in graph.neighbors_view(u)
            if u < w
        }
        for u, w in _match_stubs(stubs, rng, forbidden=existing):
            if graph.add_edge(u, w):
                realised_internal[u] += 1
                realised_internal[w] += 1

    # --- inter-community edges -------------------------------------------
    member_sets = {v: set(ms) for v, ms in memberships.items()}
    external_stubs: List[int] = []
    for v in range(params.n):
        external = max(0, degrees[v] - realised_internal[v])
        external_stubs.extend([v] * external)
    existing_edges = set(graph.edges())
    candidate_pairs = _match_stubs(external_stubs, rng, forbidden=existing_edges)
    for u, w in candidate_pairs:
        if member_sets[u] & member_sets[w]:
            continue  # an external edge must cross community boundaries
        graph.add_edge(u, w)

    communities = [set(members) for members in community_members if members]
    internal_quota = {v: sum(quotas[v]) for v in range(params.n)}
    return LFRGraph(
        graph=graph,
        communities=communities,
        memberships=memberships,
        params=params,
        internal_quota=internal_quota,
    )
