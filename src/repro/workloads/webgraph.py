"""Synthetic web-graph substitute for the eu-2015-tpd dataset.

The paper's efficiency experiments (Table II, Figures 8-9) run on
``eu-2015-tpd``, a 6.65M-node / 170M-edge crawl of European top private
domains, preprocessed by dropping directions, multi-edges and self-loops
(Section V-B1).  That crawl is not redistributable here and is far beyond a
pure-Python single-machine run, so this module builds the closest synthetic
equivalent:

* out-degrees and in-weights drawn from heavy-tailed power laws with very
  different cutoffs (web graphs have much heavier out-degree tails — compare
  the paper's max in-degree 74,129 vs max out-degree 398,599);
* directed edges realised with a directed Chung-Lu model (numpy-sampled for
  speed);
* the same normalisation the paper applies: symmetrise, deduplicate, drop
  self-loops.

:func:`webgraph_statistics` then reports exactly the Table II rows, so the
benchmark harness prints paper-vs-measured side by side.  The default scale
is ~20K vertices; ``scale`` multiplies the vertex count and keeps the shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.adjacency import Graph
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive, check_type

__all__ = ["WebGraphParams", "WebGraphResult", "generate_webgraph", "webgraph_statistics"]


@dataclass(frozen=True)
class WebGraphParams:
    """Parameters of the synthetic web crawl.

    Defaults are tuned so that the *shape* of Table II is preserved at small
    scale: average (binary) degree in the mid-20s and a max out-degree
    several times the max in-degree.
    """

    n: int = 20_000
    avg_out_degree: float = 14.0
    out_exponent: float = 1.5
    in_exponent: float = 2.1
    max_out_fraction: float = 0.1
    max_in_fraction: float = 0.004

    def __post_init__(self):
        check_type(self.n, int, "n")
        check_positive(self.n, "n")
        check_positive(self.avg_out_degree, "avg_out_degree")
        check_positive(self.out_exponent, "out_exponent")
        check_positive(self.in_exponent, "in_exponent")
        if not 0 < self.max_out_fraction <= 1:
            raise ValueError("max_out_fraction must be in (0, 1]")
        if not 0 < self.max_in_fraction <= 1:
            raise ValueError("max_in_fraction must be in (0, 1]")


@dataclass
class WebGraphResult:
    """The generated crawl: binary graph plus the directed raw statistics."""

    graph: Graph
    out_degrees: Dict[int, int]
    in_degrees: Dict[int, int]
    num_directed_edges: int
    params: WebGraphParams


def _powerlaw_weights(n: int, exponent: float, max_value: float, rng: np.random.Generator) -> np.ndarray:
    """Continuous truncated Pareto samples in [1, max_value]."""
    u = rng.random(n)
    t = exponent
    a = 1.0
    b = float(max_value) ** (1.0 - t)
    return (a + u * (b - a)) ** (1.0 / (1.0 - t))


def generate_webgraph(params: WebGraphParams = WebGraphParams(), seed: int = 0) -> WebGraphResult:
    """Generate the synthetic web crawl and normalise it to a binary graph."""
    check_type(params, WebGraphParams, "params")
    rng = np.random.default_rng(derive_seed(seed, "webgraph", params.n))
    n = params.n

    out_w = _powerlaw_weights(n, params.out_exponent, params.max_out_fraction * n, rng)
    out_w *= params.avg_out_degree / out_w.mean()
    out_degrees = np.maximum(1, np.round(out_w)).astype(np.int64)
    out_degrees = np.minimum(out_degrees, int(params.max_out_fraction * n))

    in_w = _powerlaw_weights(n, params.in_exponent, params.max_in_fraction * n, rng)
    in_p = in_w / in_w.sum()

    sources = np.repeat(np.arange(n, dtype=np.int64), out_degrees)
    targets = rng.choice(n, size=sources.shape[0], p=in_p)

    keep = sources != targets
    sources, targets = sources[keep], targets[keep]
    num_directed = int(sources.shape[0])

    in_counts = np.bincount(targets, minlength=n)
    out_counts = np.bincount(sources, minlength=n)

    # Binary normalisation: undirected, deduplicated.
    lo = np.minimum(sources, targets)
    hi = np.maximum(sources, targets)
    keys = lo.astype(np.int64) * n + hi.astype(np.int64)
    unique_keys = np.unique(keys)
    us = (unique_keys // n).astype(np.int64)
    vs = (unique_keys % n).astype(np.int64)

    graph = Graph.from_edges(
        zip(us.tolist(), vs.tolist()), vertices=range(n)
    )
    return WebGraphResult(
        graph=graph,
        out_degrees={v: int(out_counts[v]) for v in range(n)},
        in_degrees={v: int(in_counts[v]) for v in range(n)},
        num_directed_edges=num_directed,
        params=params,
    )


def webgraph_statistics(result: WebGraphResult) -> List[Tuple[str, float]]:
    """The Table II statistics rows for a generated crawl.

    Returns ``(statistic, value)`` pairs matching the paper's table:
    ``# nodes``, ``# edges``, ``avg. degree``, ``max in-degree``,
    ``max out-degree`` (degree statistics on the directed crawl, average on
    the directed edge count, as in the paper: 170M/6.65M ≈ 25.58).
    """
    graph = result.graph
    n = graph.num_vertices
    avg_degree = result.num_directed_edges / n if n else 0.0
    return [
        ("# nodes", float(n)),
        ("# edges", float(result.num_directed_edges)),
        ("avg. degree", avg_degree),
        ("max in-degree", float(max(result.in_degrees.values(), default=0))),
        ("max out-degree", float(max(result.out_degrees.values(), default=0))),
    ]
