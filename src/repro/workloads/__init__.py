"""Workload generators: LFR benchmark, dynamic edit batches, web-graph substitute."""

from repro.workloads.dynamic import (
    EditStream,
    random_deletions,
    random_edit_batch,
    random_insertions,
    vertex_arrival_batch,
    vertex_departure_batch,
)
from repro.workloads.lfr import LFRGraph, LFRParams, generate_lfr, solve_power_law_xmin
from repro.workloads.realworld import LabelledGraph, karate_club, les_miserables
from repro.workloads.webgraph import (
    WebGraphParams,
    WebGraphResult,
    generate_webgraph,
    webgraph_statistics,
)

__all__ = [
    "LFRParams",
    "LFRGraph",
    "generate_lfr",
    "solve_power_law_xmin",
    "random_edit_batch",
    "random_insertions",
    "random_deletions",
    "vertex_arrival_batch",
    "vertex_departure_batch",
    "EditStream",
    "WebGraphParams",
    "WebGraphResult",
    "generate_webgraph",
    "webgraph_statistics",
    "LabelledGraph",
    "karate_club",
    "les_miserables",
]
