"""Classic small real-world networks with known community structure.

The paper's quality evaluation is synthetic (LFR) and its efficiency
evaluation uses a web crawl we substitute; these classic datasets add a
third leg: *real* social structure at test-suite scale, with
ground-truth-ish factions the community-detection literature has used for
decades.

* :func:`karate_club` — Zachary's karate club (34 vertices, 78 edges) with
  the historical two-faction split after the club schism;
* :func:`les_miserables` — Hugo's character co-occurrence network
  (77 vertices, 254 weighted edges), used here to exercise the
  weighted-network binarization path.

Both are sourced from networkx's bundled public-domain data and normalised
through this library's own pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.graph.adjacency import Graph
from repro.graph.io import from_networkx
from repro.graph.transform import binarize, quantile_threshold

__all__ = ["LabelledGraph", "karate_club", "les_miserables"]


@dataclass
class LabelledGraph:
    """A real-world graph plus whatever ground truth history provides."""

    graph: Graph
    factions: List[Set[int]]
    name: str
    vertex_names: Dict[int, str]


def karate_club() -> LabelledGraph:
    """Zachary's karate club with the two post-split factions.

    The factions are the actual club split recorded by Zachary (1977) — the
    canonical sanity check: any community detector worth its salt separates
    the instructor's faction (around vertex 0) from the president's
    (around vertex 33).
    """
    nxg = nx.karate_club_graph()
    graph = from_networkx(nxg)
    instructor = {
        v for v, data in nxg.nodes(data=True) if data["club"] == "Mr. Hi"
    }
    president = set(nxg.nodes()) - instructor
    return LabelledGraph(
        graph=graph,
        factions=[instructor, president],
        name="zachary-karate-club",
        vertex_names={v: f"member-{v}" for v in graph.vertices()},
    )


def les_miserables(keep_fraction: float = 0.6) -> LabelledGraph:
    """Les Misérables character co-occurrences, binarized per the paper.

    The raw network is weighted (number of co-occurrences); we apply the
    Section-I preprocessing — symmetrise and threshold — keeping the
    strongest ``keep_fraction`` of edges.  No formal ground truth exists;
    ``factions`` is empty and the dataset is used for structure/pipeline
    tests rather than NMI scoring.
    """
    nxg = nx.les_miserables_graph()
    names = sorted(nxg.nodes())
    index = {name: i for i, name in enumerate(names)}
    weighted_edges: List[Tuple[int, int, float]] = [
        (index[u], index[v], float(data.get("weight", 1.0)))
        for u, v, data in nxg.edges(data=True)
    ]
    tau = quantile_threshold(weighted_edges, keep_fraction)
    graph = binarize(weighted_edges, threshold=tau, vertices=range(len(names)))
    return LabelledGraph(
        graph=graph,
        factions=[],
        name="les-miserables",
        vertex_names={i: name for name, i in index.items()},
    )
