"""Dynamic-graph workload generation.

Section V-B1 of the paper: *"we generate the graph edit batch by randomly
selecting edges for insertion and deletion. Typically, the batch size is set
from 100 to 100,000, and then for each size we randomly pick half edges to
insert and half to delete."*  :func:`random_edit_batch` implements exactly
that protocol — uniform over existing edges for deletions and uniform over
non-edges for insertions — plus a few targeted variants used by the
ablations, and :class:`EditStream` produces sequences of batches for the
streaming examples.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.graph.adjacency import Graph, normalize_edge
from repro.graph.edits import EditBatch, apply_batch
from repro.utils.rng import derive_rng
from repro.utils.validation import check_non_negative, check_type

__all__ = [
    "random_edit_batch",
    "random_insertions",
    "random_deletions",
    "vertex_arrival_batch",
    "vertex_departure_batch",
    "EditStream",
]

Edge = Tuple[int, int]


def _sample_non_edges(graph: Graph, count: int, rng, max_tries_factor: int = 200) -> Set[Edge]:
    """Uniformly sample ``count`` distinct non-edges via rejection sampling.

    Works well whenever the graph is sparse (the only regime the paper
    considers); raises if the graph is too dense to find enough non-edges.
    """
    vertices = sorted(graph.vertices())
    n = len(vertices)
    possible = n * (n - 1) // 2 - graph.num_edges
    if count > possible:
        raise ValueError(
            f"requested {count} insertions but only {possible} non-edges exist"
        )
    picked: Set[Edge] = set()
    tries = 0
    limit = max_tries_factor * max(count, 1) + 1000
    while len(picked) < count:
        tries += 1
        if tries > limit:
            # Dense fallback: enumerate all non-edges and sample exactly.
            all_non_edges = [
                (u, v)
                for i, u in enumerate(vertices)
                for v in vertices[i + 1 :]
                if not graph.has_edge(u, v) and (u, v) not in picked
            ]
            picked.update(rng.sample(all_non_edges, count - len(picked)))
            break
        u = vertices[rng.randrange(n)]
        v = vertices[rng.randrange(n)]
        if u == v:
            continue
        edge = normalize_edge(u, v)
        if edge in picked or graph.has_edge(*edge):
            continue
        picked.add(edge)
    return picked


def random_insertions(graph: Graph, count: int, seed: int = 0) -> EditBatch:
    """A batch of ``count`` uniformly random edge insertions."""
    check_type(count, int, "count")
    check_non_negative(count, "count")
    rng = derive_rng(seed, "insertions", count)
    return EditBatch(insertions=frozenset(_sample_non_edges(graph, count, rng)))


def random_deletions(graph: Graph, count: int, seed: int = 0) -> EditBatch:
    """A batch of ``count`` uniformly random edge deletions."""
    check_type(count, int, "count")
    check_non_negative(count, "count")
    if count > graph.num_edges:
        raise ValueError(
            f"requested {count} deletions but graph has {graph.num_edges} edges"
        )
    rng = derive_rng(seed, "deletions", count)
    edges = sorted(graph.edges())
    return EditBatch(deletions=frozenset(rng.sample(edges, count)))


def random_edit_batch(graph: Graph, size: int, seed: int = 0) -> EditBatch:
    """The paper's batch: ``size`` edits, half insertions and half deletions.

    Odd sizes put the extra edit on the insertion side.  Both halves are
    uniform: deletions over existing edges, insertions over non-edges.
    """
    check_type(size, int, "size")
    check_non_negative(size, "size")
    num_deletions = size // 2
    num_insertions = size - num_deletions
    if num_deletions > graph.num_edges:
        raise ValueError(
            f"batch needs {num_deletions} deletions but graph has "
            f"{graph.num_edges} edges"
        )
    rng = derive_rng(seed, "edit-batch", size)
    edges = sorted(graph.edges())
    deletions = frozenset(rng.sample(edges, num_deletions)) if num_deletions else frozenset()
    insertions = frozenset(_sample_non_edges(graph, num_insertions, rng))
    return EditBatch(insertions=insertions, deletions=deletions)


def vertex_arrival_batch(
    graph: Graph, new_vertex: int, num_links: int, seed: int = 0
) -> EditBatch:
    """A new vertex arriving with ``num_links`` edges to existing vertices.

    Section IV premises: vertex insertion is handled as if the vertex were an
    old vertex whose previous neighbours were all removed — i.e. purely
    through its inserted edges.
    """
    if graph.has_vertex(new_vertex):
        raise ValueError(f"vertex {new_vertex} already exists")
    existing = sorted(graph.vertices())
    if num_links > len(existing):
        raise ValueError(
            f"requested {num_links} links but graph has {len(existing)} vertices"
        )
    rng = derive_rng(seed, "vertex-arrival", new_vertex)
    targets = rng.sample(existing, num_links)
    return EditBatch.build(insertions=[(new_vertex, t) for t in targets])


def vertex_departure_batch(graph: Graph, vertex: int) -> EditBatch:
    """A vertex leaving: all its incident edges are deleted."""
    if not graph.has_vertex(vertex):
        raise ValueError(f"vertex {vertex} not in graph")
    return EditBatch.build(
        deletions=[(vertex, u) for u in graph.neighbors_view(vertex)]
    )


class EditStream:
    """An endless stream of edit batches over an evolving graph.

    Each call to :meth:`next_batch` samples a batch against the *current*
    graph state and applies it, so consecutive batches compose exactly like
    a real update feed.  The stream owns a working copy — the caller's graph
    is never mutated.

    With ``rate`` set (mean edits per unit time), the stream also models
    *arrival times*: :meth:`timed_edits` decomposes the batches into single
    edits carrying seeded exponential inter-arrival gaps — a Poisson-like
    ingest feed for exercising the service layer's micro-batcher under
    bursty load.  Timing is pure metadata; the edit sequence is identical
    to the untimed stream for the same seed.
    """

    def __init__(
        self,
        graph: Graph,
        batch_size: int,
        seed: int = 0,
        rate: Optional[float] = None,
    ):
        check_type(batch_size, int, "batch_size")
        check_non_negative(batch_size, "batch_size")
        if rate is not None and not rate > 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.graph = graph.copy()
        self.batch_size = batch_size
        self.seed = seed
        self.rate = rate
        #: Simulated arrival clock, advanced by :meth:`timed_edits`.
        self.clock = 0.0
        self._step = 0

    def next_batch(self) -> EditBatch:
        """Generate, apply and return the next batch."""
        batch = random_edit_batch(
            self.graph, self.batch_size, seed=derive_rng(self.seed, "stream", self._step).getrandbits(63)
        )
        apply_batch(self.graph, batch)
        self._step += 1
        return batch

    def take(self, count: int) -> List[EditBatch]:
        """Return the next ``count`` batches."""
        return [self.next_batch() for _ in range(count)]

    def timed_edits(self, count: int) -> Iterator[Tuple[float, str, int, int]]:
        """Yield ``count`` single edits as ``(arrival_time, op, u, v)``.

        ``op`` is ``'+'``/``'-'`` (the CLI edit-file spelling).  Each
        batch's edits are emitted in a seeded shuffle, and every arrival
        advances :attr:`clock` by a seeded ``Exp(rate)`` gap — fully
        deterministic per seed, like everything else in the library.
        Requires ``rate``.
        """
        if self.rate is None:
            raise ValueError("timed_edits requires a stream built with rate=")
        if self.batch_size == 0:
            raise ValueError(
                "timed_edits requires batch_size >= 1 (empty batches yield "
                "no edits, so the feed could never make progress)"
            )
        check_type(count, int, "count")
        check_non_negative(count, "count")
        emitted = 0
        while emitted < count:
            step = self._step
            batch = self.next_batch()
            edits = [("-", e) for e in sorted(batch.deletions)]
            edits += [("+", e) for e in sorted(batch.insertions)]
            arrival_rng = derive_rng(self.seed, "arrival", step)
            arrival_rng.shuffle(edits)
            for op, (u, v) in edits:
                self.clock += arrival_rng.expovariate(self.rate)
                yield (self.clock, op, u, v)
                emitted += 1
                if emitted >= count:
                    return

    def __iter__(self) -> Iterator[EditBatch]:
        while True:
            yield self.next_batch()
