"""rSLPA: overlapping community detection over distributed dynamic graphs.

Reproduction of Jian, Lian & Chen, ICDE 2018 (arXiv:1801.05946).

Quickstart::

    from repro import Graph, RSLPADetector, random_edit_batch

    graph = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
    detector = RSLPADetector(graph, seed=7, iterations=100).fit()
    print(detector.communities())

    batch = random_edit_batch(detector.graph, size=2, seed=1)
    detector.update(batch)          # incremental Correction Propagation
    print(detector.communities())

Execution selection — local backend, distributed message plane, shard
storage, state format — goes through one declarative layer
(:mod:`repro.api`): configs resolve to a ``RunPlan`` with recorded
provenance (``plan_for(graph, ExecutionConfig(...)).explain()``), and
``AlgoConfig`` / ``ExecutionConfig`` / ``ServicePlanConfig`` drive the
detector, the cluster wrappers, and the serving facade uniformly.

See ``DESIGN.md`` at the repository root for the architecture (config →
plan → execution planes, plus the three-plane service layer),
``ROADMAP.md`` for the north star, and ``README.md`` for the execution-
plan guide and the ``BENCH_*.json`` paper-vs-measured records.
"""

from repro.api import (
    AlgoConfig,
    DetectionResult,
    DistributedResult,
    ExecutionConfig,
    GraphCaps,
    RunPlan,
    ServicePlanConfig,
    UpdateResult,
    plan_for,
    resolve_plan,
)
from repro.baselines import SLPA, FastSLPA, fast_slpa_detect, lpa_detect, slpa_detect
from repro.core import (
    ArrayLabelState,
    CorrectionPropagator,
    Cover,
    FastCorrectionPropagator,
    FastPropagator,
    LabelState,
    PostprocessResult,
    ReferencePropagator,
    RSLPADetector,
    UpdateReport,
    detect_communities,
    extract_communities,
)
from repro.graph import (
    CSRDelta,
    CSRGraph,
    EditBatch,
    Graph,
    HashPartitioner,
    apply_batch,
    diff_graphs,
    from_networkx,
    read_edge_list,
    relabel_to_integers,
    to_networkx,
    write_edge_list,
)
from repro.metrics import nmi_overlapping, omega_index, overlapping_f1
from repro.service import (
    CheckpointStore,
    CommunityService,
    EditQueue,
    MembershipIndex,
    ServiceConfig,
)
from repro.workloads import (
    EditStream,
    LFRParams,
    WebGraphParams,
    generate_lfr,
    generate_webgraph,
    random_edit_batch,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # unified execution-plan api
    "AlgoConfig",
    "ExecutionConfig",
    "ServicePlanConfig",
    "GraphCaps",
    "RunPlan",
    "resolve_plan",
    "plan_for",
    "DetectionResult",
    "UpdateResult",
    "DistributedResult",
    # graph substrate
    "Graph",
    "CSRGraph",
    "CSRDelta",
    "EditBatch",
    "apply_batch",
    "diff_graphs",
    "HashPartitioner",
    "read_edge_list",
    "write_edge_list",
    "to_networkx",
    "from_networkx",
    "relabel_to_integers",
    # core
    "RSLPADetector",
    "detect_communities",
    "ReferencePropagator",
    "FastPropagator",
    "CorrectionPropagator",
    "FastCorrectionPropagator",
    "UpdateReport",
    "LabelState",
    "ArrayLabelState",
    "Cover",
    "PostprocessResult",
    "extract_communities",
    # service layer
    "CommunityService",
    "ServiceConfig",
    "EditQueue",
    "MembershipIndex",
    "CheckpointStore",
    # baselines
    "SLPA",
    "FastSLPA",
    "slpa_detect",
    "fast_slpa_detect",
    "lpa_detect",
    # workloads
    "LFRParams",
    "generate_lfr",
    "random_edit_batch",
    "EditStream",
    "WebGraphParams",
    "generate_webgraph",
    # metrics
    "nmi_overlapping",
    "omega_index",
    "overlapping_f1",
]
