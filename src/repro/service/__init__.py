"""Service layer: the detector wrapped for long-lived serving.

The paper's operating mode (Section V-B3) is a state that absorbs edit
batches continuously and extracts communities on demand — an online
service, not a batch job.  This package is that service, organised as
**three planes around one fitted detector** (the three-plane architecture,
sibling to the two-representation story in ``graph/`` and the two-plane
story in ``distributed/``):

* **Ingest plane** (``repro.service.ingest``) — :class:`EditQueue`
  coalesces a stream of single edge edits into net
  :class:`~repro.graph.edits.EditBatch` windows (opposite edits cancel,
  duplicates absorb, ``max_pending`` backpressures), each window paid for
  once by Correction Propagation via ``detector.update``.
* **Query plane** (``repro.service.index``) — :class:`MembershipIndex`
  inverts the latest extraction into ``vertex -> stable community ids``
  and ``stable id -> members`` maps, with identity carried across
  extractions by :func:`repro.core.tracking.assign_stable_ids`.  Queries
  are dictionary lookups against this cached extraction; a max-staleness
  policy (re-extract lazily after K batches, or on demand) keeps query
  latency decoupled from ingest volume.
* **Durability plane** (``repro.service.durability``) —
  :class:`CheckpointStore` persists array-native npz checkpoints of the
  label state plus a CRC-tagged write-ahead log of applied batches;
  because every random draw is keyed, checkpoint + WAL replay restores a
  **bit-identical** state after a crash, on any backend.

:class:`CommunityService` (``repro.service.facade``) wires the planes
together and is the one class most deployments need::

    from repro.service import CommunityService

    service = CommunityService(graph, seed=7, batch_size=64,
                               checkpoint_dir="state/").start()
    service.submit_insert(17, 23)          # queued; flushes per window
    service.communities_of(17)             # stable ids, served from cache
    # after a crash:
    service = CommunityService.recover("state/")

A fourth plane, **replication** (``repro.service.replication``), runs the
service as a supervised topology — one primary process plus N read
replicas fed by shipped WAL records — so queries keep being answered
through primary crashes (the freshest replica is promoted and replays
its tail, bit-identically)::

    from repro.service import ServiceSupervisor

    sup = ServiceSupervisor(graph, "state/", replicas=2, seed=7).start()
    client = sup.client()
    sup.submit_insert(17, 23)
    client.communities_of(17)   # served by a replica; primary fallback
    result = sup.finish()       # stats()["failovers"] et al.
"""

from repro.service.durability import (
    Checkpoint,
    CheckpointStore,
    CorruptCheckpointError,
)
from repro.service.facade import CommunityService, ServiceConfig, ServicePlanConfig
from repro.service.index import MembershipIndex
from repro.service.ingest import DELETE, INSERT, BackpressureError, EditQueue
from repro.service.replication import (
    ChildCrashedError,
    FailoverExhaustedError,
    PipeServiceWire,
    ReplicatedClient,
    ReplicaLapsedError,
    ServiceSupervisor,
    ServiceWire,
    TcpServiceWire,
)

__all__ = [
    "CommunityService",
    "ServiceConfig",
    "ServicePlanConfig",
    "EditQueue",
    "BackpressureError",
    "INSERT",
    "DELETE",
    "MembershipIndex",
    "Checkpoint",
    "CheckpointStore",
    "CorruptCheckpointError",
    "ServiceSupervisor",
    "ReplicatedClient",
    "ServiceWire",
    "PipeServiceWire",
    "TcpServiceWire",
    "ChildCrashedError",
    "FailoverExhaustedError",
    "ReplicaLapsedError",
]
