"""Query plane: an inverted membership index with stable community ids.

Raw covers are positional — community 3 of one extraction has no relation
to community 3 of the next — which makes them useless as a query surface
for a long-lived service.  :class:`MembershipIndex` fixes both problems at
once:

* **Stable identity** — every extraction is matched against the previous
  one with :func:`repro.core.tracking.assign_stable_ids` (maximum-Jaccard
  matching, the Greene et al. protocol), so a community keeps its id while
  it drifts, survives merges/splits by closest continuation, and retired
  ids are never reused.
* **Inverted maps** — the cover is unpacked into ``vertex -> (stable ids)``
  and ``stable id -> members`` dictionaries, so membership queries are
  O(memberships) lookups rather than cover scans.

The index is rebuilt wholesale per extraction (extraction itself dominates;
see the service benchmark) and serves any number of queries in between —
this is what decouples query latency from ingest batch size.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.communities import Cover
from repro.core.tracking import TransitionReport, assign_stable_ids

__all__ = ["MembershipIndex"]


class MembershipIndex:
    """Vertex→ids / id→members maps over the latest extraction.

    >>> index = MembershipIndex()
    >>> _ = index.update(Cover([{0, 1, 2}, {2, 3}]))
    >>> index.communities_of(2)
    (0, 1)
    >>> sorted(index.members(0))
    [0, 1, 2]
    """

    def __init__(self, match_threshold: float = 0.3, drift_tolerance: float = 0.1):
        self.match_threshold = match_threshold
        self.drift_tolerance = drift_tolerance
        self._cover: Cover = Cover([])
        self._ids: Tuple[int, ...] = ()
        self._next_id = 0
        self._members: Dict[int, FrozenSet[int]] = {}
        self._vertex: Dict[int, Tuple[int, ...]] = {}
        #: Number of update() calls absorbed so far.
        self.generation = 0
        #: The transition report of the latest update (None before the 2nd).
        self.last_transition: Optional[TransitionReport] = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def update(self, cover: Cover) -> Optional[TransitionReport]:
        """Absorb a fresh extraction; returns the transition from the last.

        The first update seeds the id space (ids 0..k-1 in cover order) and
        returns ``None``; later updates carry ids across via the matcher.
        """
        first = self.generation == 0
        self._ids, self._next_id, report = assign_stable_ids(
            self._cover,
            self._ids,
            cover,
            self._next_id,
            match_threshold=self.match_threshold,
            drift_tolerance=self.drift_tolerance,
        )
        self._cover = cover
        members: Dict[int, FrozenSet[int]] = {}
        vertex: Dict[int, list] = {}
        for cid, community in zip(self._ids, cover):
            members[cid] = community
            for v in community:
                vertex.setdefault(v, []).append(cid)
        self._members = members
        self._vertex = {v: tuple(sorted(cids)) for v, cids in vertex.items()}
        self.generation += 1
        self.last_transition = None if first else report
        return self.last_transition

    def export_state(self) -> Dict[str, object]:
        """Everything that shapes future id assignment, picklable.

        Stable ids are path-dependent — each extraction is matched against
        the *previous* one — so a replica that starts indexing mid-stream
        would mint a different id trajectory than its primary.  Shipping
        this snapshot and :meth:`install_state`-ing it puts the replica on
        the primary's trajectory: identical covers then yield identical
        ids forever after.
        """
        return {
            "cover": [frozenset(c) for c in self._cover],
            "ids": self._ids,
            "next_id": self._next_id,
            "generation": self.generation,
        }

    def install_state(self, state: Dict[str, object]) -> None:
        """Adopt an :meth:`export_state` snapshot (rebuilds the query maps)."""
        self._cover = Cover(state["cover"])
        self._ids = tuple(state["ids"])
        self._next_id = int(state["next_id"])
        self.generation = int(state["generation"])
        members: Dict[int, FrozenSet[int]] = {}
        vertex: Dict[int, list] = {}
        for cid, community in zip(self._ids, self._cover):
            members[cid] = community
            for v in community:
                vertex.setdefault(v, []).append(cid)
        self._members = members
        self._vertex = {v: tuple(sorted(cids)) for v, cids in vertex.items()}
        self.last_transition = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def cover(self) -> Cover:
        """The indexed cover (positional; prefer the stable-id queries)."""
        return self._cover

    def community_ids(self) -> Tuple[int, ...]:
        """All live stable ids, sorted."""
        return tuple(sorted(self._members))

    def communities_of(self, vertex: int) -> Tuple[int, ...]:
        """Stable ids of the communities containing ``vertex`` (sorted)."""
        return self._vertex.get(vertex, ())

    def members(self, cid: int) -> FrozenSet[int]:
        """Members of stable community ``cid``; KeyError if dead/unknown."""
        try:
            return self._members[cid]
        except KeyError:
            raise KeyError(f"no live community with stable id {cid}") from None

    def overlap(self, u: int, v: int) -> Tuple[int, ...]:
        """Stable ids of the communities containing both ``u`` and ``v``."""
        cids_u = self._vertex.get(u)
        if not cids_u:
            return ()
        cids_v = set(self._vertex.get(v, ()))
        return tuple(c for c in cids_u if c in cids_v)

    def snapshot(self) -> Dict[int, FrozenSet[int]]:
        """A ``stable id -> members`` copy (drift diffing, reporting)."""
        return dict(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return (
            f"MembershipIndex(generation={self.generation}, "
            f"communities={len(self._members)}, next_id={self._next_id})"
        )
