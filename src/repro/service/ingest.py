"""Ingest plane: a coalescing micro-batcher for single-edit streams.

A production monitor does not receive :class:`~repro.graph.edits.EditBatch`
objects — it receives a stream of individual "edge appeared" / "edge
vanished" events (the operating mode of Section V-B3, and the explicit
shape of the streaming systems in the related work).  :class:`EditQueue`
sits between that stream and ``detector.update``:

* **Coalescing** — a pending insert and a later delete of the same edge
  (or vice versa) cancel each other before ever reaching the detector, and
  duplicate events for an already-pending edge are absorbed.  What drains
  is the *net* batch of the window, which is exactly the batch whose apply
  cost Correction Propagation pays.
* **Flush policy** — the queue reports :attr:`ready` once ``batch_size``
  net edits are pending; the service flushes there, or earlier on demand.
* **Backpressure** — with ``max_pending`` set, offers that would grow the
  queue past the bound raise :class:`BackpressureError` instead of letting
  an ingest burst outrun the repair engine unboundedly.  Cancelling and
  duplicate offers never trip it (they do not grow the queue).  The error
  carries a ``retry_after`` hint — an EWMA of the observed drain cadence —
  and ``offer(..., timeout=)`` turns the hard error into a bounded wait
  for capacity.

The queue is graph-agnostic: validation against the live graph happens at
apply time (strictly, in the service), so the queue itself stays O(1) per
offer.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple, Union

from repro.graph.adjacency import normalize_edge
from repro.graph.edits import EditBatch
from repro.utils.validation import check_positive, check_type

__all__ = ["EditQueue", "BackpressureError", "INSERT", "DELETE"]

#: The two edit kinds, spelled like the CLI edit-file prefixes.
INSERT = "+"
DELETE = "-"

Edge = Tuple[int, int]


class BackpressureError(RuntimeError):
    """The queue is at ``max_pending`` and cannot absorb a growing offer.

    ``retry_after`` (seconds, possibly ``None``) hints when capacity is
    likely to exist again — the queue's EWMA of its recent drain cadence.
    """

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class EditQueue:
    """Coalesce single edge edits into net :class:`EditBatch` windows.

    >>> queue = EditQueue(batch_size=2)
    >>> queue.offer_insert(1, 2)
    True
    >>> queue.offer_delete(2, 1)   # cancels the pending insert
    False
    >>> queue.pending
    0
    """

    def __init__(self, batch_size: int = 256, max_pending: Optional[int] = None):
        check_type(batch_size, int, "batch_size")
        check_positive(batch_size, "batch_size")
        if max_pending is not None:
            check_type(max_pending, int, "max_pending")
            if max_pending < batch_size:
                raise ValueError(
                    f"max_pending ({max_pending}) must be >= batch_size "
                    f"({batch_size}) or the queue could never fill a window"
                )
        self.batch_size = batch_size
        self.max_pending = max_pending
        # Insertion-ordered edge -> op; drain() preserves arrival order.
        self._pending: Dict[Edge, str] = {}
        self.offered = 0
        self.cancelled_pairs = 0
        self.duplicates = 0
        self.drained_batches = 0
        self.drained_edits = 0
        self.backpressure_hits = 0
        self._last_drain_time: Optional[float] = None
        self._drain_interval_s: Optional[float] = None  # EWMA of the cadence

    # ------------------------------------------------------------------
    # Offering
    # ------------------------------------------------------------------
    def offer(
        self, op: str, u: int, v: int, timeout: Optional[float] = None
    ) -> bool:
        """Enqueue one edit; returns True iff the edit is now pending.

        False means it coalesced away — a duplicate of an identical pending
        edit, or the cancellation of the opposite pending edit.

        With ``timeout`` (seconds) set, a full queue waits up to that long
        for another thread to drain capacity before raising
        :class:`BackpressureError`; the default raises immediately.  The
        raised error carries :attr:`retry_after` either way.
        """
        if op not in (INSERT, DELETE):
            raise ValueError(f"op must be '+' or '-', got {op!r}")
        if timeout is not None and timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        edge = normalize_edge(u, v)
        self.offered += 1
        pending_op = self._pending.get(edge)
        if pending_op == op:
            self.duplicates += 1
            return False
        if pending_op is not None:  # opposite op: the pair annihilates
            del self._pending[edge]
            self.cancelled_pairs += 1
            return False
        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            if timeout:
                deadline = time.monotonic() + timeout
                while len(self._pending) >= self.max_pending:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    # Bounded sleep-poll: wake at the cadence hint (or
                    # quickly, if the cadence is unknown/faster).
                    time.sleep(max(0.001, min(remaining, self.retry_after, 0.05)))
            if len(self._pending) >= self.max_pending:
                self.backpressure_hits += 1
                raise BackpressureError(
                    f"edit queue at max_pending={self.max_pending}; drain "
                    f"before offering more (retry_after~{self.retry_after:.3f}s)",
                    retry_after=self.retry_after,
                )
        self._pending[edge] = op
        return True

    def offer_insert(self, u: int, v: int) -> bool:
        return self.offer(INSERT, u, v)

    def offer_delete(self, u: int, v: int) -> bool:
        return self.offer(DELETE, u, v)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Net edits currently queued."""
        return len(self._pending)

    @property
    def ready(self) -> bool:
        """Whether a full ``batch_size`` window is pending."""
        return len(self._pending) >= self.batch_size

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of offered edits absorbed before reaching the detector.

        Duplicates and both halves of every cancelled insert/delete pair
        never cost the repair engine anything; this is the ingest plane's
        headline efficiency number (0.0 until anything is offered).
        """
        if not self.offered:
            return 0.0
        return (self.duplicates + 2 * self.cancelled_pairs) / self.offered

    @property
    def retry_after(self) -> float:
        """Seconds a producer should back off when the queue is full.

        An EWMA of the observed inter-drain interval; 0.1 s before any
        cadence has been observed (one drain establishes nothing — the
        estimate starts at the second).
        """
        if self._drain_interval_s is None:
            return 0.1
        return self._drain_interval_s

    def drain(self, limit: Optional[int] = None) -> EditBatch:
        """Remove up to ``limit`` pending edits (all, by default) as a batch.

        Edits leave in arrival order, so a partial drain keeps the stream's
        ordering semantics.
        """
        if limit is None or limit >= len(self._pending):
            taken = self._pending
            self._pending = {}
        else:
            taken = {}
            for edge in list(self._pending)[:limit]:
                taken[edge] = self._pending.pop(edge)
        insertions = frozenset(e for e, op in taken.items() if op == INSERT)
        deletions = frozenset(e for e, op in taken.items() if op == DELETE)
        batch = EditBatch(insertions=insertions, deletions=deletions)
        if batch:
            self.drained_batches += 1
            self.drained_edits += batch.size
            now = time.monotonic()
            if self._last_drain_time is not None:
                interval = now - self._last_drain_time
                if self._drain_interval_s is None:
                    self._drain_interval_s = interval
                else:  # EWMA, half-life of ~one drain
                    self._drain_interval_s = (
                        0.5 * self._drain_interval_s + 0.5 * interval
                    )
            self._last_drain_time = now
        return batch

    def stats(self) -> Dict[str, Union[int, float]]:
        return {
            "pending": self.pending,
            "offered": self.offered,
            "duplicates": self.duplicates,
            "cancelled_pairs": self.cancelled_pairs,
            "drained_batches": self.drained_batches,
            "drained_edits": self.drained_edits,
            "backpressure_hits": self.backpressure_hits,
            "retry_after": self.retry_after,
            "coalesce_ratio": self.coalesce_ratio,
        }

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"EditQueue(pending={self.pending}, batch_size={self.batch_size}, "
            f"max_pending={self.max_pending})"
        )
