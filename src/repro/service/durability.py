"""Durability plane: binary checkpoints plus a write-ahead log.

The service's recovery contract is *bit-identical restart*: after a crash,
``recover()`` must produce exactly the label matrices (and therefore
exactly the extracted cover) that the uninterrupted run would hold.  Two
pieces make that possible:

* **Checkpoints** — the full :class:`~repro.core.labels_array.ArrayLabelState`
  written array-native with :func:`numpy.savez_compressed` (the
  ``core.serialize`` npz layout), together with the graph's edge array and
  the run metadata (seed, batch epoch, edits applied).  Writes go to a
  temp file and are published with ``os.replace``, so a crash mid-write
  never corrupts the latest good checkpoint.
* **Write-ahead log** — every applied :class:`~repro.graph.edits.EditBatch`
  is appended (fsynced, CRC-tagged JSON lines) *before* the in-memory
  apply.  Because every random draw in Correction Propagation is keyed by
  ``(seed, slot, epoch)`` — never by wall clock or iteration order —
  replaying the logged batches from the checkpoint's epoch reproduces the
  exact post-crash state on either backend.

A torn tail (the record being written when the process died) fails its CRC
and is discarded; everything before it replays.  On checkpoint the WAL is
rotated down to the records newer than the *oldest retained* checkpoint
epoch and older checkpoint files are pruned, so disk usage stays bounded
by ``keep`` checkpoints + ``keep`` WAL windows — and, crucially, every
retained checkpoint has a complete WAL tail, so recovery can fall back to
an older checkpoint (a torn latest file raises
:class:`CorruptCheckpointError`) and still replay to the exact same state.

The store is thread-safe for the append/rotate pair: a WAL append racing
a checkpoint's rotation (the facade is single-threaded, but embedders and
the replication supervisor are not obliged to be) can never drop a
CRC-valid record — the internal lock serialises the two.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.labels_array import ArrayLabelState
from repro.core.serialize import state_from_arrays, state_to_arrays
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "CorruptCheckpointError",
    "encode_wal_record",
    "parse_wal_line",
]

CHECKPOINT_FORMAT = "repro.service_checkpoint"
CHECKPOINT_VERSION = 1
WAL_NAME = "wal.log"


class CorruptCheckpointError(RuntimeError):
    """A checkpoint file failed to load: torn write, bad zip, missing keys.

    Carries the offending ``path`` and ``epoch`` so recovery code can fall
    back to an older retained checkpoint (the WAL keeps every retained
    checkpoint's full tail, so the fallback still replays exactly).
    """

    def __init__(self, path, epoch: int, cause: BaseException):
        self.path = Path(path)
        self.epoch = epoch
        self.cause = cause
        super().__init__(
            f"checkpoint {self.path} (epoch {epoch}) is corrupt: "
            f"{type(cause).__name__}: {cause}"
        )


@dataclass
class Checkpoint:
    """One recovered checkpoint: state + graph + the run metadata."""

    state: ArrayLabelState
    graph: Graph
    seed: int
    batch_epoch: int
    edits_applied: int

    @property
    def iterations(self) -> int:
        return self.state.num_iterations


def _wal_crc(epoch: int, ins: List[List[int]], dels: List[List[int]]) -> int:
    body = json.dumps(
        {"epoch": epoch, "ins": ins, "del": dels},
        sort_keys=True,
        separators=(",", ":"),
    )
    return zlib.crc32(body.encode("utf-8"))


def encode_wal_record(epoch: int, batch: EditBatch) -> str:
    """One WAL line; the single encoder append, rotation, and the
    replication plane's record shipping all use, so every copy of a record
    re-passes its CRC wherever it is read."""
    ins = [list(e) for e in sorted(batch.insertions)]
    dels = [list(e) for e in sorted(batch.deletions)]
    record = {
        "epoch": epoch,
        "ins": ins,
        "del": dels,
        "crc": _wal_crc(epoch, ins, dels),
    }
    return json.dumps(record, separators=(",", ":")) + "\n"


def parse_wal_line(line: str) -> Optional[Tuple[int, EditBatch]]:
    """Decode one WAL line, or ``None`` if it is torn or fails its CRC.

    The inverse of :func:`encode_wal_record`; the replication plane runs
    every shipped record through this before applying it, so a record
    corrupted in transit is indistinguishable from a torn disk tail and
    triggers the same re-fetch path.
    """
    try:
        payload = json.loads(line)
        epoch = payload["epoch"]
        ins = payload["ins"]
        dels = payload["del"]
        if payload["crc"] != _wal_crc(epoch, ins, dels):
            return None
        batch = EditBatch(
            insertions=frozenset(tuple(e) for e in ins),
            deletions=frozenset(tuple(e) for e in dels),
        )
    except (ValueError, KeyError, TypeError):
        return None
    return epoch, batch


class CheckpointStore:
    """Checkpoint + WAL files under one directory.

    Layout: ``checkpoint-<epoch>.npz`` (zero-padded batch epochs) and one
    ``wal.log``.  The store is an inert file manager — the replay policy
    (which records to apply, in what order) lives in
    :meth:`CommunityService.recover`.
    """

    #: Observability context (:class:`repro.obs.Obs`) the service attaches
    #: when traced; records WAL fsync latency and checkpoint write time.
    #: ``None`` (the default) keeps the durability path metric-free.
    obs = None

    def __init__(self, directory: Union[str, Path], keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._wal_handle = None
        # Serialises WAL appends against checkpoint rotation: an append
        # racing _rotate_wal's close/replace could land its record in the
        # just-unlinked file and silently lose it.
        self._lock = threading.RLock()
        #: Records dropped by the last :meth:`read_wal` because a torn or
        #: corrupt line cut the log — by write-ahead ordering they were
        #: never applied, but recovery should still surface the loss.
        self.last_discarded_records = 0

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _checkpoint_path(self, epoch: int) -> Path:
        return self.directory / f"checkpoint-{epoch:010d}.npz"

    def checkpoint_epochs(self) -> List[int]:
        """Epochs of all on-disk checkpoints, ascending."""
        epochs = []
        for path in self.directory.glob("checkpoint-*.npz"):
            try:
                epochs.append(int(path.stem.split("-", 1)[1]))
            except ValueError:
                continue  # foreign file; not ours to interpret
        return sorted(epochs)

    def latest_epoch(self) -> Optional[int]:
        epochs = self.checkpoint_epochs()
        return epochs[-1] if epochs else None

    def write_checkpoint(
        self,
        state: ArrayLabelState,
        graph: Graph,
        seed: int,
        batch_epoch: int,
        edits_applied: int = 0,
    ) -> Path:
        """Atomically publish a checkpoint, rotate the WAL, prune old files."""
        edges = sorted(graph.edges())
        arrays = state_to_arrays(state)
        arrays.update(
            ckpt_format=np.array(CHECKPOINT_FORMAT),
            ckpt_version=np.array(CHECKPOINT_VERSION, dtype=np.int64),
            edges=np.array(edges, dtype=np.int64).reshape(len(edges), 2),
            seed=np.array(seed, dtype=np.int64),
            batch_epoch=np.array(batch_epoch, dtype=np.int64),
            edits_applied=np.array(edits_applied, dtype=np.int64),
        )
        final = self._checkpoint_path(batch_epoch)
        tmp = final.with_suffix(".npz.tmp")
        obs = self.obs
        if obs is not None:
            write_start = time.perf_counter()
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        if obs is not None:
            obs.metrics.histogram("service.checkpoint_write_seconds").observe(
                time.perf_counter() - write_start
            )
        with self._lock:
            os.replace(tmp, final)
            for epoch in self.checkpoint_epochs()[: -self.keep]:
                self._checkpoint_path(epoch).unlink(missing_ok=True)
            # Rotate down to the *oldest retained* checkpoint, not the one
            # just written: every surviving checkpoint keeps its full
            # replay tail, so recovery can fall back past a corrupt latest
            # file and still reach the identical state.
            self._rotate_wal(self.checkpoint_epochs()[0])
        return final

    def load_checkpoint(self, epoch: Optional[int] = None) -> Checkpoint:
        """Load the checkpoint at ``epoch`` (latest by default)."""
        if epoch is None:
            epoch = self.latest_epoch()
            if epoch is None:
                raise FileNotFoundError(
                    f"no checkpoints under {self.directory}"
                )
        path = self._checkpoint_path(epoch)
        try:
            with np.load(path) as arrays:
                if str(arrays["ckpt_format"]) != CHECKPOINT_FORMAT:
                    raise ValueError(f"{path} is not a service checkpoint")
                if int(arrays["ckpt_version"]) != CHECKPOINT_VERSION:
                    raise ValueError(
                        f"{path}: unsupported checkpoint version "
                        f"{int(arrays['ckpt_version'])}"
                    )
                state = state_from_arrays(arrays)
                edges = [tuple(edge) for edge in arrays["edges"].tolist()]
                meta = {
                    key: int(arrays[key])
                    for key in ("seed", "batch_epoch", "edits_applied")
                }
        except FileNotFoundError:
            raise
        except (zipfile.BadZipFile, KeyError, EOFError, OSError) as exc:
            # A torn write (crash mid-publish never does this, but a torn
            # copy, disk fault, or truncation can) surfaces as one typed
            # error the caller can catch to fall back an epoch.
            raise CorruptCheckpointError(path, epoch, exc) from exc
        vertices = np.nonzero(state.alive)[0].tolist()
        graph = Graph.from_edges(edges, vertices=vertices)
        return Checkpoint(state=state, graph=graph, **meta)

    # ------------------------------------------------------------------
    # Write-ahead log
    # ------------------------------------------------------------------
    @property
    def wal_path(self) -> Path:
        return self.directory / WAL_NAME

    def append_wal(self, epoch: int, batch: EditBatch) -> None:
        """Durably append one applied batch (call *before* the apply)."""
        with self._lock:
            if self._wal_handle is None:
                self._wal_handle = open(self.wal_path, "a", encoding="utf-8")
            self._wal_handle.write(encode_wal_record(epoch, batch))
            self._wal_handle.flush()
            obs = self.obs
            if obs is not None:
                fsync_start = time.perf_counter()
            # An unlocked fsync could race _rotate_wal and hit a closed
            # fd — holding the lock across it IS the append/rotate
            # serialisation this store promises.
            # repro-lint: disable=RPL005 -- rotation swaps the handle; the lock must cover the fsync
            os.fsync(self._wal_handle.fileno())
            if obs is not None:
                obs.metrics.histogram("service.wal_fsync_seconds").observe(
                    time.perf_counter() - fsync_start
                )

    def read_wal(self, after_epoch: int = -1) -> List[Tuple[int, EditBatch]]:
        """All intact WAL records with epoch > ``after_epoch``, in order.

        Reading stops at the first torn or corrupt record — by the
        write-ahead ordering everything after it was never applied.  The
        number of lines discarded that way (the torn one included) is
        kept in :attr:`last_discarded_records`.
        """
        with self._lock:
            self.last_discarded_records = 0
            if not self.wal_path.exists():
                return []
            records: List[Tuple[int, EditBatch]] = []
            with open(self.wal_path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
            for position, line in enumerate(lines):
                record = parse_wal_line(line)
                if record is None:
                    self.last_discarded_records = len(lines) - position
                    break
                epoch, batch = record
                if epoch > after_epoch:
                    records.append((epoch, batch))
            return records

    def _rotate_wal(self, checkpoint_epoch: int) -> None:
        """Drop WAL records the oldest retained checkpoint made redundant."""
        with self._lock:
            survivors = self.read_wal(after_epoch=checkpoint_epoch)
            if self._wal_handle is not None:
                self._wal_handle.close()
                self._wal_handle = None
            tmp = self.wal_path.with_suffix(".log.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for epoch, batch in survivors:
                    handle.write(encode_wal_record(epoch, batch))
                handle.flush()
                # The replace() below must not publish an un-synced tail,
                # and appends must stay blocked until it lands.
                # repro-lint: disable=RPL005 -- tmp must be durable before replace() publishes it
                os.fsync(handle.fileno())
            os.replace(tmp, self.wal_path)

    def wal_records(self) -> int:
        """Number of intact records currently in the WAL."""
        return len(self.read_wal())

    def close(self) -> None:
        with self._lock:
            if self._wal_handle is not None:
                self._wal_handle.close()
                self._wal_handle = None

    def __repr__(self) -> str:
        return (
            f"CheckpointStore({str(self.directory)!r}, "
            f"checkpoints={self.checkpoint_epochs()}, wal={self.wal_records()})"
        )
