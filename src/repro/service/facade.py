"""The :class:`CommunityService` facade: ingest, query, survive.

One object wires the three planes together around a fitted
:class:`~repro.core.detector.RSLPADetector`:

* edits stream in through :meth:`submit` → the :class:`EditQueue`
  micro-batcher → ``detector.update`` (Correction Propagation) whenever a
  window fills;
* queries (:meth:`communities_of`, :meth:`members`, :meth:`overlap`) are
  answered from the :class:`MembershipIndex` over a cached extraction,
  re-extracted lazily once ``staleness_batches`` batches have landed since
  the last one — the paper's "update continuously, extract periodically"
  policy (Section V-B3) as a max-staleness bound;
* with a checkpoint directory configured, every applied batch is logged
  write-ahead and the state checkpoints every ``checkpoint_every``
  batches, so :meth:`recover` restores a bit-identical service after a
  crash (a torn WAL tail is discarded, counted, and surfaced in
  :meth:`stats` — by write-ahead ordering those records were never
  applied).

The service degrades gracefully rather than failing hard: a lazy
re-extraction that raises keeps serving the last published index (the
queries stay answerable, counted as ``stale_serves``), ingest bursts
surface :class:`~repro.service.ingest.BackpressureError` with a
``retry_after`` hint (and :meth:`submit` accepts a bounded-wait
``timeout=``), and when the detector ran on the supervised multiprocess
engine its :class:`~repro.distributed.metrics.RecoveryStats` counters
appear under ``stats()["recovery"]``.

The facade works unchanged over every engine the detector offers: local
reference, the vectorised array substrate, or a :meth:`start`
``num_workers > 0`` distributed BSP fit — all bit-identical per seed, so
the durability contract holds across them too.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from time import time_ns
from typing import Dict, FrozenSet, Optional, Tuple, Union

from repro.api.config import (
    DEFAULT_ITERATIONS,
    AlgoConfig,
    ExecutionConfig,
    ServicePlanConfig,
)
from repro.api.plan import RunPlan
from repro.core.communities import Cover
from repro.core.detector import RSLPADetector
from repro.core.incremental import UpdateReport
from repro.core.labels_array import ArrayLabelState
from repro.core.tracking import TransitionReport
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch
from repro.service.durability import CheckpointStore, CorruptCheckpointError
from repro.service.index import MembershipIndex
from repro.service.ingest import EditQueue

__all__ = ["CommunityService", "ServiceConfig", "ServicePlanConfig"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything tunable about a service instance, flat in one place.

    This is the keyword-friendly (legacy) form of
    :class:`repro.api.config.ServicePlanConfig`; the two convert 1:1
    (:meth:`as_plan_config` / :func:`_flatten_plan_config`) and the
    service accepts either.

    ``staleness_batches`` is K in the lazy re-extraction policy: a query
    finding K or more batches applied since the last extraction triggers
    one (0 = always fresh).  ``checkpoint_every`` = 0 disables automatic
    checkpoints (explicit :meth:`CommunityService.checkpoint` still works);
    it only matters when a checkpoint directory is configured.  With
    ``strict_edits`` off, flushed edits that are no-ops against the live
    graph (inserting a present edge, deleting an absent one) are dropped
    instead of raising.
    """

    seed: int = 0
    iterations: int = DEFAULT_ITERATIONS
    backend: str = "auto"
    tau_step: float = 0.001
    batch_size: int = 256
    max_pending: Optional[int] = None
    staleness_batches: int = 4
    match_threshold: float = 0.3
    drift_tolerance: float = 0.1
    checkpoint_every: int = 1
    keep_checkpoints: int = 2
    strict_edits: bool = True

    def as_plan_config(
        self, execution: Optional[ExecutionConfig] = None
    ) -> ServicePlanConfig:
        """The structured config-layer form of this flat config.

        An ``execution`` config supplies the distributed axes; its backend
        is overridden by this config's ``backend`` field (the same
        precedence the service applies to keyword overrides).
        """
        if execution is None:
            execution = ExecutionConfig(backend=self.backend)
        elif execution.backend != self.backend:
            execution = replace(execution, backend=self.backend)
        return ServicePlanConfig(
            algo=AlgoConfig(
                seed=self.seed, iterations=self.iterations, tau_step=self.tau_step
            ),
            execution=execution,
            batch_size=self.batch_size,
            max_pending=self.max_pending,
            staleness_batches=self.staleness_batches,
            match_threshold=self.match_threshold,
            drift_tolerance=self.drift_tolerance,
            checkpoint_every=self.checkpoint_every,
            keep_checkpoints=self.keep_checkpoints,
            strict_edits=self.strict_edits,
        )


def _flatten_plan_config(plan_cfg: ServicePlanConfig) -> ServiceConfig:
    """The flat legacy view of a :class:`ServicePlanConfig` (1:1 fields)."""
    return ServiceConfig(
        seed=plan_cfg.algo.seed,
        iterations=plan_cfg.algo.iterations,
        backend=plan_cfg.execution.backend,
        tau_step=plan_cfg.algo.tau_step,
        batch_size=plan_cfg.batch_size,
        max_pending=plan_cfg.max_pending,
        staleness_batches=plan_cfg.staleness_batches,
        match_threshold=plan_cfg.match_threshold,
        drift_tolerance=plan_cfg.drift_tolerance,
        checkpoint_every=plan_cfg.checkpoint_every,
        keep_checkpoints=plan_cfg.keep_checkpoints,
        strict_edits=plan_cfg.strict_edits,
    )


def _normalise_config(
    config: Optional[Union[ServiceConfig, ServicePlanConfig]], overrides
) -> Tuple[ServiceConfig, ExecutionConfig]:
    """Accept either config form (+ keyword overrides on the flat fields)."""
    if isinstance(config, ServicePlanConfig):
        execution = config.execution
        cfg = _flatten_plan_config(config)
    else:
        cfg = config if config is not None else ServiceConfig()
        execution = None
    if overrides:
        cfg = replace(cfg, **overrides)
    if execution is None:
        execution = ExecutionConfig(backend=cfg.backend)
    elif execution.backend != cfg.backend:  # a backend= override wins
        execution = replace(execution, backend=cfg.backend)
    return cfg, execution


def _service_obs(execution: ExecutionConfig):
    """A fresh observability context when ``execution.trace`` asks for one.

    The service plane records ``service.*`` spans (apply, extract) and
    metrics (queue depth, coalescing ratio, staleness at serve time, WAL
    fsync latency) into the same context the engines use, so one exported
    trace covers ingest, repair, and query; ``None`` (tracing off) keeps
    every service path free of :mod:`repro.obs` calls.
    """
    if not execution.trace:
        return None
    from repro.obs import Obs

    obs = Obs()
    obs.meta.setdefault("mode", "service")
    return obs


class CommunityService:
    """A long-lived overlapping-community service over a dynamic graph.

    >>> from repro.graph.generators import ring_of_cliques
    >>> service = CommunityService(
    ...     ring_of_cliques(4, 5), seed=3, iterations=60, batch_size=2
    ... ).start()
    >>> service.communities_of(0) != ()
    True
    >>> _ = service.submit_insert(0, 10)   # queued, window not full
    >>> service.stats()["pending_edits"]
    1
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[Union[ServiceConfig, ServicePlanConfig]] = None,
        checkpoint_dir: Optional[str] = None,
        **overrides,
    ):
        cfg, execution = _normalise_config(config, overrides)
        self.config = cfg
        self.execution = execution
        self.detector = RSLPADetector(
            graph,
            algo=AlgoConfig(
                seed=cfg.seed, iterations=cfg.iterations, tau_step=cfg.tau_step
            ),
            execution=execution,
        )
        self.queue = EditQueue(
            batch_size=cfg.batch_size, max_pending=cfg.max_pending
        )
        self.index = MembershipIndex(
            match_threshold=cfg.match_threshold,
            drift_tolerance=cfg.drift_tolerance,
        )
        self.store = (
            CheckpointStore(checkpoint_dir, keep=cfg.keep_checkpoints)
            if checkpoint_dir is not None
            else None
        )
        if self.store is not None and not self._ids_contiguous():
            raise ValueError(
                "durability (checkpoint_dir) requires contiguous vertex ids "
                "0..n-1 — checkpoints are array-native; use "
                "repro.graph.relabel_to_integers first"
            )
        self.obs = _service_obs(execution)
        if self.store is not None:
            self.store.obs = self.obs
        self._started = False
        self.checkpoints_skipped = 0
        self.checkpoint_fallbacks = 0
        self.batches_applied = 0
        self.edits_applied = 0
        self.batches_since_extract = 0
        self.extractions = 0
        self.queries_served = 0
        self.wal_discarded_records = 0
        self.stale_serves = 0
        self.refresh_failures = 0
        self.last_report: Optional[UpdateReport] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The live graph (the detector's private copy; read-only)."""
        return self.detector.graph

    def plan(self) -> RunPlan:
        """The detector's resolved execution plan for the live graph."""
        return self.detector.plan()

    def start(
        self,
        num_workers: Optional[int] = None,
        dist_engine: Optional[str] = None,
        shard_backend: Optional[str] = None,
    ) -> "CommunityService":
        """Fit the detector (locally, or on ``num_workers`` BSP workers),
        build the first extraction, and write the baseline checkpoint.

        Defaults come from the service's :class:`ExecutionConfig` — a
        :class:`ServicePlanConfig` with ``execution.num_workers > 0``
        makes ``start()`` a distributed fit without further keywords.
        """
        if self._started:
            raise RuntimeError("service already started")
        if num_workers is None:
            num_workers = self.execution.num_workers
        if num_workers:
            self.detector.fit_distributed(
                num_workers=num_workers,
                engine=dist_engine,
                shard_backend=shard_backend,
            )
        else:
            self.detector.fit()
        if self.obs is not None:
            # A traced distributed fit recorded its spans into the engine's
            # own context (created by the cluster wrappers); fold them into
            # the service's so one export covers fit + ingest + queries.
            engine_obs = getattr(
                getattr(self.detector, "comm_stats", None), "obs", None
            )
            if engine_obs is not None and engine_obs is not self.obs:
                self.obs.trace.merge(engine_obs.trace.snapshot())
                self.obs.metrics.merge(engine_obs.metrics.snapshot())
        self._started = True
        self.refresh()
        if self.store is not None:
            self.checkpoint()
        return self

    @classmethod
    def recover(
        cls,
        checkpoint_dir: str,
        config: Optional[Union[ServiceConfig, ServicePlanConfig]] = None,
        **overrides,
    ) -> "CommunityService":
        """Restore a service from its checkpoint directory.

        Loads the latest checkpoint, replays the WAL tail through
        ``detector.update``, and re-extracts — the result is bit-identical
        (label matrices and cover) to the state the crashed service held
        after its last durably-applied batch.  The seed is taken from the
        checkpoint; other config (backend, staleness, batching) may differ
        from the original run without affecting the recovered state.

        A torn WAL tail (the crash interrupted an append) is discarded —
        by write-ahead ordering those records were never applied — but the
        loss is logged and surfaced as ``wal_discarded_records`` in
        :meth:`stats`.

        A corrupt checkpoint *file* (torn copy, disk fault) raises
        :class:`~repro.service.durability.CorruptCheckpointError` — but
        only after falling back through every older retained checkpoint:
        the WAL keeps each retained checkpoint's full tail, so recovering
        from an older epoch replays to the exact same state.  The number
        of files skipped that way is surfaced as ``checkpoint_fallbacks``
        in :meth:`stats`.
        """
        cfg, execution = _normalise_config(config, overrides)
        store = CheckpointStore(checkpoint_dir, keep=cfg.keep_checkpoints)
        epochs = store.checkpoint_epochs()
        if not epochs:
            raise FileNotFoundError(f"no checkpoints under {checkpoint_dir}")
        ckpt = None
        corrupt: list = []
        for epoch in reversed(epochs):
            try:
                ckpt = store.load_checkpoint(epoch)
                break
            except CorruptCheckpointError as exc:
                corrupt.append(exc)
                logger.warning(
                    "skipping corrupt checkpoint (falling back an epoch): %s",
                    exc,
                )
        if ckpt is None:
            # Every retained checkpoint is bad; re-raise the freshest
            # failure — it names the file the operator should inspect.
            raise corrupt[0]
        cfg = replace(cfg, seed=ckpt.seed, iterations=ckpt.iterations)
        service = cls.__new__(cls)
        service.config = cfg
        service.execution = execution
        service.detector = RSLPADetector.from_state(
            ckpt.graph,
            ckpt.state,
            ckpt.seed,
            backend=cfg.backend,
            tau_step=cfg.tau_step,
            batch_epoch=ckpt.batch_epoch,
        )
        service.queue = EditQueue(
            batch_size=cfg.batch_size, max_pending=cfg.max_pending
        )
        service.index = MembershipIndex(
            match_threshold=cfg.match_threshold,
            drift_tolerance=cfg.drift_tolerance,
        )
        service.store = store
        service.obs = _service_obs(execution)
        store.obs = service.obs
        service._started = True
        service.batches_applied = ckpt.batch_epoch
        service.edits_applied = ckpt.edits_applied
        service.batches_since_extract = 0
        service.extractions = 0
        service.queries_served = 0
        service.checkpoints_skipped = 0
        service.checkpoint_fallbacks = len(corrupt)
        service.stale_serves = 0
        service.refresh_failures = 0
        service.last_report = None
        for epoch, batch in store.read_wal(after_epoch=ckpt.batch_epoch):
            if epoch != service.batches_applied + 1:
                raise ValueError(
                    f"WAL does not continue from checkpoint: expected epoch "
                    f"{service.batches_applied + 1}, found {epoch}"
                )
            service.last_report = service.detector.update(batch)
            service.batches_applied = epoch
            service.edits_applied += batch.size
        service.wal_discarded_records = store.last_discarded_records
        if service.wal_discarded_records:
            logger.warning(
                "recovery discarded %d torn WAL record(s); by write-ahead "
                "ordering they were never applied, so the recovered state "
                "is still exact as of batch epoch %d",
                service.wal_discarded_records,
                service.batches_applied,
            )
        service.refresh()
        return service

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("service not started; call start() first")

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def submit(
        self, op: str, u: int, v: int, timeout: Optional[float] = None
    ) -> Optional[UpdateReport]:
        """Offer one edit ('+' insert / '-' delete); flush if a window fills.

        Returns the flush's :class:`UpdateReport` when this edit completed
        a window, else ``None`` (the edit is pending, coalesced, or
        cancelled).  A full queue raises
        :class:`~repro.service.ingest.BackpressureError` carrying a
        ``retry_after`` back-off hint; ``timeout=`` bounds a wait for
        capacity first.
        """
        self._require_started()
        self.queue.offer(op, u, v, timeout=timeout)
        if self.queue.ready:
            return self.flush()
        return None

    def submit_insert(
        self, u: int, v: int, timeout: Optional[float] = None
    ) -> Optional[UpdateReport]:
        return self.submit("+", u, v, timeout=timeout)

    def submit_delete(
        self, u: int, v: int, timeout: Optional[float] = None
    ) -> Optional[UpdateReport]:
        return self.submit("-", u, v, timeout=timeout)

    def flush(self) -> Optional[UpdateReport]:
        """Drain the queue and apply the net batch now (empty → no-op)."""
        self._require_started()
        return self._apply(self.queue.drain())

    def apply(self, batch: EditBatch) -> Optional[UpdateReport]:
        """Apply a pre-built batch directly (bulk ingest path).

        Pending queued edits are flushed first so the edit order stays the
        arrival order.
        """
        self._require_started()
        if self.queue.pending:
            self.flush()
        return self._apply(batch)

    def _apply(self, batch: EditBatch) -> Optional[UpdateReport]:
        if not batch:
            return None
        if not self.config.strict_edits:
            graph = self.detector.graph
            batch = EditBatch(
                insertions=frozenset(
                    e for e in batch.insertions if not graph.has_edge(*e)
                ),
                deletions=frozenset(
                    e for e in batch.deletions if graph.has_edge(*e)
                ),
            )
            if not batch:
                return None
        obs = self.obs
        if obs is not None:
            apply_start = time_ns()
        # Validate before logging: the WAL must only ever contain batches
        # that are guaranteed to apply (write-ahead implies replay-ahead).
        batch.validate_against(self.detector.graph)
        epoch = self.batches_applied + 1
        if self.store is not None:
            self.store.append_wal(epoch, batch)
        report = self.detector.update(batch)
        self.batches_applied = epoch
        self.edits_applied += batch.size
        self.batches_since_extract += 1
        self.last_report = report
        if (
            self.store is not None
            and self.config.checkpoint_every
            and epoch % self.config.checkpoint_every == 0
        ):
            if self._checkpointable():
                self.checkpoint()
            else:
                # A batch stepped outside the array id contract (auto mode
                # downgraded the corrector).  Recovery stays exact — the WAL
                # keeps every batch since the last good checkpoint and the
                # replay re-downgrades the same way — but the WAL stops
                # rotating; surface that in stats rather than crash ingest.
                self.checkpoints_skipped += 1
        if obs is not None:
            # The span covers WAL append + repair + any checkpoint; the
            # gauges publish the ingest plane's live operating point.
            obs.trace.record(
                "service.apply", apply_start, plane="service", superstep=epoch
            )
            obs.metrics.counter("service.batches_applied").inc()
            obs.metrics.counter("service.edits_applied").inc(batch.size)
            obs.metrics.gauge("service.queue_depth").set(self.queue.pending)
            obs.metrics.gauge("service.coalesce_ratio").set(
                self.queue.coalesce_ratio
            )
        return report

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _ids_contiguous(self) -> bool:
        graph = self.detector.graph
        return sorted(graph.vertices()) == list(range(graph.num_vertices))

    def _checkpointable(self) -> bool:
        """Whether the current state fits the array-native checkpoint layout."""
        return self.detector.array_state is not None or self._ids_contiguous()

    def checkpoint(self) -> None:
        """Write a checkpoint of the current state (and rotate the WAL)."""
        self._require_started()
        if self.store is None:
            raise RuntimeError("no checkpoint directory configured")
        state = self.detector.array_state
        if state is None:
            # Reference backend: checkpoints are array-native regardless.
            if not self._ids_contiguous():
                raise ValueError(
                    "cannot checkpoint: vertex ids are no longer contiguous "
                    "0..n-1 (array-native checkpoints cannot represent id "
                    "gaps); recovery still works from the last checkpoint + "
                    "WAL"
                )
            state = ArrayLabelState.from_label_state(self.detector.label_state)
        self.store.write_checkpoint(
            state,
            self.detector.graph,
            seed=self.config.seed,
            batch_epoch=self.batches_applied,
            edits_applied=self.edits_applied,
        )

    # ------------------------------------------------------------------
    # Query plane
    # ------------------------------------------------------------------
    def refresh(self) -> Optional[TransitionReport]:
        """Re-extract now and rebuild the index (the on-demand path)."""
        self._require_started()
        obs = self.obs
        if obs is not None:
            extract_start = time_ns()
            obs.metrics.histogram("service.staleness_at_extract").observe(
                self.batches_since_extract
            )
        report = self.index.update(self.detector.communities())
        self.extractions += 1
        self.batches_since_extract = 0
        if obs is not None:
            obs.trace.record("service.extract", extract_start, plane="service")
        return report

    def _maybe_refresh(self) -> None:
        if self.index.generation == 0:
            self.refresh()  # never extracted (defensive; start() extracts)
        elif (
            self.batches_since_extract
            and self.batches_since_extract >= self.config.staleness_batches
        ):
            # Graceful degradation: a failed lazy re-extraction (e.g. the
            # fit engine is mid-recovery) keeps serving the last published
            # index instead of failing the query — staleness over outage.
            # Explicit refresh() calls still raise; only the lazy path
            # degrades.
            try:
                self.refresh()
            except Exception:
                self.refresh_failures += 1
                self.stale_serves += 1
                logger.warning(
                    "lazy re-extraction failed; serving the index from "
                    "generation %d (%d batch(es) stale)",
                    self.index.generation,
                    self.batches_since_extract,
                    exc_info=True,
                )

    def _count_query(self) -> None:
        self.queries_served += 1
        obs = self.obs
        if obs is not None:
            obs.metrics.counter("service.queries").inc()
            # Staleness as the query actually experienced it: batches
            # applied since the index generation it was answered from.
            obs.metrics.histogram("service.staleness_at_serve").observe(
                self.batches_since_extract
            )

    def communities_of(self, vertex: int) -> Tuple[int, ...]:
        """Stable ids of the communities containing ``vertex``."""
        self._require_started()
        self._maybe_refresh()
        self._count_query()
        return self.index.communities_of(vertex)

    def members(self, cid: int) -> FrozenSet[int]:
        """Members of the community with stable id ``cid``."""
        self._require_started()
        self._maybe_refresh()
        self._count_query()
        return self.index.members(cid)

    def overlap(self, u: int, v: int) -> Tuple[int, ...]:
        """Stable ids of communities containing both ``u`` and ``v``."""
        self._require_started()
        self._maybe_refresh()
        self._count_query()
        return self.index.overlap(u, v)

    def cover(self) -> Cover:
        """The indexed cover (refreshing it first if stale)."""
        self._require_started()
        self._maybe_refresh()
        return self.index.cover

    def stats(self) -> Dict[str, object]:
        """A JSON-serialisable operational snapshot."""
        graph = self.detector.graph
        payload: Dict[str, object] = {
            "started": self._started,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "pending_edits": self.queue.pending,
            "batches_applied": self.batches_applied,
            "edits_applied": self.edits_applied,
            "batches_since_extract": self.batches_since_extract,
            "staleness_batches": self.config.staleness_batches,
            "extractions": self.extractions,
            "queries_served": self.queries_served,
            "num_communities": len(self.index) if self.index.generation else None,
            "index_generation": self.index.generation,
            "queue_cancelled_pairs": self.queue.cancelled_pairs,
            "queue_duplicates": self.queue.duplicates,
            "queue_backpressure_hits": self.queue.backpressure_hits,
            "queue_retry_after": self.queue.retry_after,
            "stale_serves": self.stale_serves,
            "refresh_failures": self.refresh_failures,
        }
        if self.store is not None:
            payload["checkpoints"] = len(self.store.checkpoint_epochs())
            payload["latest_checkpoint_epoch"] = self.store.latest_epoch()
            payload["wal_records"] = self.store.wal_records()
            payload["checkpoints_skipped"] = self.checkpoints_skipped
            payload["checkpoint_fallbacks"] = self.checkpoint_fallbacks
            payload["wal_discarded_records"] = self.wal_discarded_records
        recovery = getattr(
            getattr(self.detector, "comm_stats", None), "recovery", None
        )
        if recovery is not None:
            # The supervised multiprocess engine ran the fit: surface its
            # fault-tolerance counters alongside the service's own.
            payload["recovery"] = recovery.as_dict()
        if self.obs is not None:
            payload["metrics"] = self.obs.metrics.snapshot()
        return payload

    def trace_result(self):
        """The recorded :class:`~repro.obs.TraceResult` for a traced
        service (``execution.trace=True``), else ``None``.

        Covers everything the service did so far — the fit's engine spans
        (merged in :meth:`start`), every applied batch, every extraction —
        plus the live metrics registry; callable repeatedly as the
        service keeps running.
        """
        if self.obs is None:
            return None
        return self.obs.result({"batches_applied": self.batches_applied})

    def close(self) -> None:
        """Release file handles (the WAL appender); the state stays usable."""
        if self.store is not None:
            self.store.close()

    def __repr__(self) -> str:
        status = (
            f"batches={self.batches_applied}, pending={self.queue.pending}"
            if self._started
            else "unstarted"
        )
        return f"CommunityService(seed={self.config.seed}, {status})"
