"""Replication plane: WAL-shipping read replicas with supervised failover.

One :class:`CommunityService` process is a single point of failure for
both ingest and queries.  This module keeps the service answering through
crashes by running it as a small supervised topology:

* a **primary** child process owns the authoritative
  :class:`~repro.service.facade.CommunityService` (ingest, WAL,
  checkpoints);
* N **read replicas** rebuild the same detector state from the shared
  :class:`~repro.service.durability.CheckpointStore` checkpoint plus the
  CRC-tagged WAL records the supervisor ships record-by-record, and serve
  membership queries from their own :class:`MembershipIndex`;
* the **supervisor** (this process) windows edits, commits each batch to
  the primary, fans the resulting WAL record out to the replicas, and —
  when the primary dies — promotes the freshest replica (highest applied
  WAL sequence), replays its on-disk tail, and resumes ingest, bounded by
  the resolved ``max_failovers`` budget.

Determinism is the whole design.  Batches are sequence-labelled once by
the supervisor; applies are idempotent (``seq <= applied`` is a no-op
ack); every shipped record re-passes its CRC on arrival
(:func:`~repro.service.durability.parse_wal_line`); and index refreshes
happen on a fixed grid (every ``staleness_batches`` applied batches, the
service's K) on primary and replicas alike, with replicas bootstrapped
from the primary's exported index state so stable-id trajectories match.
A run with scripted primary kills therefore converges to the *bit
identical* cover and stable-id assignment of a failure-free run.

Failures are scripted with the service-plane faults of
:class:`~repro.distributed.faults.FaultPlan` (``kill_primary``,
``kill_replica``, ``drop_wal_record``, ``stall_heartbeat``), mirroring
the BSP engine's crash-matrix discipline: a promotion strips the fired
primary kill (:meth:`FaultPlan.without_kill_primary`), a respawn strips
the replica's faults (:meth:`FaultPlan.without_replica`), so every
scripted fault fires exactly once.

Queries go through :class:`ReplicatedClient`: per-request timeout,
retry with jittered exponential backoff
(:class:`~repro.utils.backoff.JitteredBackoff`), automatic re-routing
away from replicas whose heartbeat lapsed (an ack or query response that
missed the resolved ``heartbeat_interval``), and a final crash-aware
fallback to the primary — so no client query errors during a failover;
at worst it is served stale (bounded by K batches) and counted.

The control wire between supervisor and children is pluggable
(:data:`repro.api.registry.SERVICE_TRANSPORTS`): ``pipe`` (one
``multiprocessing.Pipe`` per child) or ``tcp`` (length-prefixed pickles
over localhost sockets with per-supervisor cookie auth, the two-"host"
shape of the BSP data plane's tcp transport).

Replication requires ``strict_edits=True``: the supervisor's encoding of
a batch must be byte-identical to the record the primary logs, which a
primary-side no-op filter would silently break.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import pickle
import signal
import socket
import struct
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.api.config import ServicePlanConfig
from repro.api.plan import GraphCaps, ServiceRunPlan, resolve_service_plan
from repro.api.registry import SERVICE_TRANSPORTS
from repro.api.results import ReplicatedRunResult
from repro.core.detector import RSLPADetector
from repro.distributed.faults import FaultPlan
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch
from repro.service.durability import (
    CheckpointStore,
    encode_wal_record,
    parse_wal_line,
)
from repro.service.facade import (
    CommunityService,
    ServiceConfig,
    _flatten_plan_config,
    _service_obs,
)
from repro.service.index import MembershipIndex
from repro.service.ingest import EditQueue
from repro.utils.backoff import JitteredBackoff

__all__ = [
    "ChildCrashedError",
    "FailoverExhaustedError",
    "ReplicaLapsedError",
    "ServiceWire",
    "ChildServiceEndpoint",
    "PipeServiceWire",
    "TcpServiceWire",
    "ServiceSupervisor",
    "ReplicatedClient",
]

logger = logging.getLogger(__name__)

#: Seconds between liveness polls while the supervisor waits on a child.
_POLL_S = 0.05

#: The child id of the initially-spawned primary (replicas use their rid).
_PRIMARY_CID = -1

#: Child-side reconnect budget (tcp): same shape as the BSP transport's.
_CONNECT_ATTEMPTS = 6
_CONNECT_DELAY_S = 0.05

#: Sentinel returned by :meth:`ServiceWire.recv` when the timeout lapses
#: without a message (distinct from any picklable payload).
TIMEOUT = object()


class ChildCrashedError(RuntimeError):
    """A service child process died while the supervisor waited on it."""

    def __init__(self, child: str, exitcode: Optional[int] = None,
                 detail: str = ""):
        self.child = str(child)
        self.exitcode = exitcode
        message = f"service child {child} died"
        if exitcode is not None:
            message += f" with exit code {exitcode}"
        if detail:
            message += f" {detail}"
        super().__init__(message)


class FailoverExhaustedError(RuntimeError):
    """The primary died more times than ``max_failovers`` allows."""


class ReplicaLapsedError(RuntimeError):
    """A replica missed its heartbeat window; the caller should re-route."""


# ----------------------------------------------------------------------
# Service wires (the supervisor <-> child control channel)
# ----------------------------------------------------------------------
class ServiceWire:
    """Supervisor-side control channel: one instance, all children.

    The supervisor calls :meth:`bind` once, then per child
    :meth:`child_endpoint` (the picklable half handed to the process) and
    :meth:`attach` after the process started.  Messages are arbitrary
    pickles; :meth:`recv` never blocks past a dead child (it raises
    :class:`ChildCrashedError`) and returns :data:`TIMEOUT` when an
    explicit timeout lapses first.
    """

    name = "base"

    def bind(self, mp_context) -> None:
        """Allocate supervisor-side resources before any child starts."""

    def child_endpoint(self, cid: int) -> "ChildServiceEndpoint":
        raise NotImplementedError

    def attach(self, cid: int, process) -> None:
        """Complete the per-child handshake after ``process`` started."""

    def send(self, cid: int, message) -> None:
        raise NotImplementedError

    def recv(self, cid: int, timeout: Optional[float] = None):
        raise NotImplementedError

    def poll(self, cid: int) -> bool:
        """Whether a message from ``cid`` is already waiting."""
        raise NotImplementedError

    def detach(self, cid: int) -> None:
        """Release one child's connection state after its process died."""

    def close(self) -> None:
        """Release every supervisor-side resource (idempotent)."""


class ChildServiceEndpoint:
    """Child-side control channel, constructed in the supervisor."""

    def open(self) -> None:
        """Connect inside the child process (before the first message)."""

    def recv(self):
        raise NotImplementedError

    def send(self, message) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release child-side resources (idempotent)."""


class PipeServiceWire(ServiceWire):
    """One ``multiprocessing.Pipe`` per child (the local default)."""

    name = "pipe"

    def __init__(self):
        self._conns: Dict[int, object] = {}
        self._child_conns: Dict[int, object] = {}
        self._processes: Dict[int, object] = {}
        self._ctx = None

    def bind(self, mp_context) -> None:
        self._ctx = mp_context

    def child_endpoint(self, cid: int) -> "PipeChildEndpoint":
        parent_conn, child_conn = self._ctx.Pipe()
        self._conns[cid] = parent_conn
        self._child_conns[cid] = child_conn
        return PipeChildEndpoint(child_conn)

    def attach(self, cid: int, process) -> None:
        self._processes[cid] = process
        # Drop the supervisor's reference to the child half so an EOF is
        # unambiguous: only the child holds that end now.
        child_conn = self._child_conns.pop(cid, None)
        if child_conn is not None:
            child_conn.close()

    def send(self, cid: int, message) -> None:
        try:
            self._conns[cid].send(message)
        except (BrokenPipeError, ConnectionResetError, OSError):
            process = self._processes.get(cid)
            raise ChildCrashedError(
                cid, getattr(process, "exitcode", None), "(control pipe closed)"
            )

    def recv(self, cid: int, timeout: Optional[float] = None):
        conn = self._conns[cid]
        process = self._processes.get(cid)
        deadline = None if timeout is None else time.monotonic() + timeout
        while not conn.poll(_POLL_S):
            if process is not None and not process.is_alive():
                # One final poll: the child may have replied just before
                # dying and the message still sits in the pipe buffer.
                if conn.poll(_POLL_S):
                    break
                raise ChildCrashedError(cid, process.exitcode)
            if deadline is not None and time.monotonic() >= deadline:
                return TIMEOUT
        try:
            return conn.recv()
        except (EOFError, ConnectionResetError):
            raise ChildCrashedError(
                cid, getattr(process, "exitcode", None), "(pipe truncated)"
            )

    def poll(self, cid: int) -> bool:
        try:
            return self._conns[cid].poll(0)
        except (OSError, EOFError):  # pragma: no cover - racing a close
            return False

    def detach(self, cid: int) -> None:
        conn = self._conns.pop(cid, None)
        if conn is not None:
            conn.close()
        self._child_conns.pop(cid, None)
        self._processes.pop(cid, None)

    def close(self) -> None:
        for conns in (self._conns, self._child_conns):
            for conn in conns.values():
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            conns.clear()
        self._processes.clear()


class PipeChildEndpoint(ChildServiceEndpoint):
    def __init__(self, conn):
        self._conn = conn

    def recv(self):
        return self._conn.recv()

    def send(self, message) -> None:
        self._conn.send(message)

    def close(self) -> None:
        self._conn.close()


def _sock_send_msg(sock, message, alive, who: str) -> None:
    """One length-prefixed pickled message down ``sock``."""
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    view = memoryview(struct.pack("<Q", len(blob)) + blob)
    sent = 0
    while sent < len(view):
        try:
            sent += sock.send(view[sent:])
        except socket.timeout:
            if not alive():
                raise ConnectionError(f"{who} died mid-frame")
            continue


def _sock_recv_exact(sock, count: int, alive, who: str,
                     deadline: Optional[float], started: bool):
    """Read exactly ``count`` bytes; :data:`TIMEOUT` only before byte one.

    Once the first byte of a frame arrived the read commits (a mid-frame
    timeout would desynchronise the stream), so the deadline is honoured
    only while ``started`` is still false and nothing has been read.
    """
    buf = bytearray(count)
    view = memoryview(buf)
    got = 0
    while got < count:
        try:
            n = sock.recv_into(view[got:])
        except socket.timeout:
            if not alive():
                raise ConnectionError(f"{who} died mid-frame")
            if (not started and got == 0 and deadline is not None
                    and time.monotonic() >= deadline):
                return TIMEOUT
            continue
        if n == 0:
            raise ConnectionError(f"{who} closed the connection mid-frame")
        got += n
    return buf


def _sock_recv_msg(sock, alive, who: str, deadline: Optional[float] = None):
    head = _sock_recv_exact(sock, 8, alive, who, deadline, started=False)
    if head is TIMEOUT:
        return TIMEOUT
    (length,) = struct.unpack("<Q", head)
    body = _sock_recv_exact(sock, length, alive, who, None, started=True)
    return pickle.loads(bytes(body))


class TcpServiceWire(ServiceWire):
    """Length-prefixed pickles over localhost TCP with cookie auth.

    The supervisor listens on an ephemeral ``127.0.0.1`` port; every
    child dials in (with jittered exponential backoff, so a respawned
    replica survives racing the supervisor's detach of its predecessor)
    and authenticates with the per-supervisor cookie — the same
    two-"host" shape as the BSP data plane's tcp transport, so promoting
    replicas to another machine is an address change, not a format one.
    """

    name = "tcp"

    def __init__(self, host: str = "127.0.0.1"):
        self._host = host
        self._listener = None
        self._port: Optional[int] = None
        self._cookie: bytes = b""
        self._socks: Dict[int, socket.socket] = {}
        self._processes: Dict[int, object] = {}

    def bind(self, mp_context) -> None:
        self._listener = socket.create_server((self._host, 0))
        self._listener.settimeout(_POLL_S)
        self._port = self._listener.getsockname()[1]
        self._cookie = os.urandom(16)

    def child_endpoint(self, cid: int) -> "TcpChildEndpoint":
        return TcpChildEndpoint(self._host, self._port, cid, self._cookie)

    def attach(self, cid: int, process) -> None:
        self._processes[cid] = process
        while cid not in self._socks:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                if not process.is_alive():
                    raise ChildCrashedError(
                        cid, process.exitcode, "before connecting"
                    )
                continue
            hello = _sock_recv_exact(
                sock, 24, lambda: True, "connecting child", None, True
            )
            if bytes(hello[:16]) != self._cookie:
                sock.close()  # not ours: refuse cross-supervisor traffic
                continue
            (dialled_cid,) = struct.unpack("<q", hello[16:])
            sock.settimeout(_POLL_S)
            self._socks[dialled_cid] = sock

    def _alive(self, cid: int) -> bool:
        process = self._processes.get(cid)
        return process is None or process.is_alive()

    def send(self, cid: int, message) -> None:
        try:
            _sock_send_msg(
                self._socks[cid], message,
                lambda: self._alive(cid), f"child {cid}",
            )
        except (ConnectionError, OSError):
            process = self._processes.get(cid)
            raise ChildCrashedError(
                cid, getattr(process, "exitcode", None), "(socket closed)"
            )

    def recv(self, cid: int, timeout: Optional[float] = None):
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            return _sock_recv_msg(
                self._socks[cid],
                lambda: self._alive(cid), f"child {cid}",
                deadline=deadline,
            )
        except (ConnectionError, OSError):
            process = self._processes.get(cid)
            raise ChildCrashedError(
                cid, getattr(process, "exitcode", None), "(socket closed)"
            )

    def poll(self, cid: int) -> bool:
        import select

        sock = self._socks.get(cid)
        if sock is None:
            return False
        readable, _, _ = select.select([sock], [], [], 0)
        return bool(readable)

    def detach(self, cid: int) -> None:
        sock = self._socks.pop(cid, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._processes.pop(cid, None)

    def close(self) -> None:
        for sock in self._socks.values():
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._socks.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None


class TcpChildEndpoint(ChildServiceEndpoint):
    def __init__(self, host: str, port: int, cid: int, cookie: bytes):
        self._host = host
        self._port = port
        self._cid = cid
        self._cookie = cookie
        self._sock: Optional[socket.socket] = None

    def open(self) -> None:
        backoff = JitteredBackoff(
            _CONNECT_DELAY_S,
            attempts=_CONNECT_ATTEMPTS,
            key=(self._cookie, self._cid, "service-reconnect"),
        )

        def dial():
            self._sock = socket.create_connection((self._host, self._port))

        backoff.retry(dial, exceptions=(OSError,))
        self._sock.sendall(self._cookie + struct.pack("<q", self._cid))
        self._sock.settimeout(_POLL_S)

    def recv(self):
        # alive() is always true child-side: a dead supervisor closes the
        # socket and the read raises ConnectionError instead.
        return _sock_recv_msg(self._sock, lambda: True, "supervisor")

    def send(self, message) -> None:
        _sock_send_msg(self._sock, message, lambda: True, "supervisor")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None


# ----------------------------------------------------------------------
# Child process main loop
# ----------------------------------------------------------------------
def _refresh_grid(cfg: ServiceConfig) -> int:
    """K of the fixed extraction grid (refresh after every K-th batch)."""
    return max(1, cfg.staleness_batches)


def _index_payload(index: MembershipIndex, kind: str, args: tuple):
    """Answer one query against an index, bypassing any lazy refresh."""
    if kind == "communities_of":
        return index.communities_of(*args)
    if kind == "members":
        return index.members(*args)
    if kind == "overlap":
        return index.overlap(*args)
    if kind == "snapshot":
        return index.snapshot()
    raise ValueError(f"unknown query kind {kind!r}")


class _ReplicaRuntime:
    """A replica child's state: detector + index following the primary."""

    def __init__(self, cfg: ServiceConfig, checkpoint_dir: str,
                 index_state, last_refresh: int, lines: List[str]):
        store = CheckpointStore(checkpoint_dir, keep=cfg.keep_checkpoints)
        try:
            ckpt = store.load_checkpoint()
        finally:
            store.close()
        self.cfg = cfg
        self.checkpoint_dir = checkpoint_dir
        self.detector = RSLPADetector.from_state(
            ckpt.graph,
            ckpt.state,
            ckpt.seed,
            backend=cfg.backend,
            tau_step=cfg.tau_step,
            batch_epoch=ckpt.batch_epoch,
        )
        self.index = MembershipIndex(
            match_threshold=cfg.match_threshold,
            drift_tolerance=cfg.drift_tolerance,
        )
        self.index.install_state(index_state)
        self.applied = ckpt.batch_epoch
        self.edits_applied = ckpt.edits_applied
        self.last_refresh = last_refresh
        self.grid = _refresh_grid(cfg)
        for line in lines:
            record = parse_wal_line(line)
            if record is not None:
                self.apply(record[0], record[1])

    def apply(self, seq: int, batch: EditBatch) -> bool:
        """Apply one in-order record; idempotent below ``applied``."""
        if seq <= self.applied:
            return False
        if seq != self.applied + 1:
            raise ValueError(
                f"replica gap: expected seq {self.applied + 1}, got {seq}"
            )
        self.detector.update(batch)
        self.applied = seq
        self.edits_applied += batch.size
        return True

    def maybe_refresh(self, seq: int) -> None:
        """Refresh on the fixed grid — and only past the bootstrap point,
        so a replica never re-extracts at a grid point the shipped index
        state already absorbed (the id trajectory must match the
        primary's exactly)."""
        if seq % self.grid == 0 and seq > self.last_refresh:
            self.index.update(self.detector.communities())
            self.last_refresh = seq

    def promote(self) -> Tuple[CommunityService, int]:
        """Become the primary: replay the on-disk WAL tail, assemble a
        full service around this runtime's detector and index."""
        store = CheckpointStore(
            self.checkpoint_dir, keep=self.cfg.keep_checkpoints
        )
        replayed = 0
        for epoch, batch in store.read_wal(after_epoch=self.applied):
            if self.apply(epoch, batch):
                replayed += 1
                self.maybe_refresh(epoch)
        cfg = self.cfg
        service = CommunityService.__new__(CommunityService)
        service.config = cfg
        from repro.api.config import ExecutionConfig

        service.execution = ExecutionConfig(backend=cfg.backend)
        service.obs = _service_obs(service.execution)
        store.obs = service.obs
        service.detector = self.detector
        service.queue = EditQueue(
            batch_size=cfg.batch_size, max_pending=cfg.max_pending
        )
        service.index = self.index
        service.store = store
        service._started = True
        service.batches_applied = self.applied
        service.edits_applied = self.edits_applied
        service.batches_since_extract = self.applied - self.last_refresh
        service.extractions = 0
        service.queries_served = 0
        service.checkpoints_skipped = 0
        service.checkpoint_fallbacks = 0
        service.stale_serves = 0
        service.refresh_failures = 0
        service.wal_discarded_records = store.last_discarded_records
        service.last_report = None
        return service, replayed


def _service_child_main(
    endpoint: ChildServiceEndpoint,
    role: str,
    rid: int,
    graph: Optional[Graph],
    cfg: ServiceConfig,
    checkpoint_dir: str,
    fault_plan: Optional[FaultPlan],
) -> None:
    """Child-process loop: primary or replica, switching role on promote."""
    faults = fault_plan if fault_plan is not None else FaultPlan()
    grid = _refresh_grid(cfg)
    service: Optional[CommunityService] = None
    runtime: Optional[_ReplicaRuntime] = None
    try:
        endpoint.open()
        if role == "primary":
            service = CommunityService(
                graph, config=cfg, checkpoint_dir=checkpoint_dir
            ).start()
            endpoint.send(
                ("ready", 0, service.index.export_state(), 0)
            )
        else:
            message = endpoint.recv()
            if message[0] != "bootstrap":  # pragma: no cover - protocol
                raise ValueError(f"replica expected bootstrap, got {message!r}")
            _verb, index_state, last_refresh, lines = message
            runtime = _ReplicaRuntime(
                cfg, checkpoint_dir, index_state, last_refresh, lines
            )
            endpoint.send(("ready", runtime.applied, None, runtime.last_refresh))
        while True:
            message = endpoint.recv()
            verb = message[0]
            if verb == "stop":
                break
            if verb == "query":
                _verb, token, kind, args = message
                if role == "primary":
                    index, applied = service.index, service.batches_applied
                else:
                    index, applied = runtime.index, runtime.applied
                try:
                    if kind == "stats":
                        if role == "primary":
                            payload = service.stats()
                        else:
                            payload = {
                                "role": "replica",
                                "applied": runtime.applied,
                                "index_generation": runtime.index.generation,
                            }
                    elif kind == "status":
                        payload = applied
                    else:
                        payload = _index_payload(index, kind, args)
                    endpoint.send(("resp", token, True, payload, applied))
                except Exception as exc:
                    endpoint.send(("resp", token, False, exc, applied))
            elif verb == "apply" and role == "primary":
                _verb, seq, line = message
                if faults.should_kill_primary(seq, "recv"):
                    os.kill(os.getpid(), signal.SIGKILL)
                if seq <= service.batches_applied:
                    # Idempotent replay after a failover re-send: the
                    # record is already durable (the promotion replayed
                    # it from the on-disk tail).
                    endpoint.send(
                        ("applied", seq, True, None,
                         service.batches_applied,
                         service.store.latest_epoch() or 0)
                    )
                    continue
                record = parse_wal_line(line)
                error: Optional[BaseException] = None
                if record is None:
                    error = ValueError(f"record {seq} failed its CRC")
                elif seq != service.batches_applied + 1:
                    error = ValueError(
                        f"primary gap: expected seq "
                        f"{service.batches_applied + 1}, got {seq}"
                    )
                else:
                    try:
                        service.apply(record[1])
                    except (ValueError, KeyError) as exc:
                        error = exc
                if error is None:
                    if faults.should_kill_primary(seq, "applied"):
                        os.kill(os.getpid(), signal.SIGKILL)
                    if seq % grid == 0:
                        service.refresh()
                endpoint.send(
                    ("applied", seq, error is None, error,
                     service.batches_applied,
                     service.store.latest_epoch() or 0)
                )
            elif verb == "wal" and role == "replica":
                _verb, seq, line = message
                record = parse_wal_line(line)
                if record is None or (
                    seq > runtime.applied + 1
                ):
                    # Corrupt in transit or a gap: ask for a re-ship from
                    # the last record this replica durably applied.
                    endpoint.send(("nack", runtime.applied))
                    continue
                fresh = runtime.apply(seq, record[1])
                if fresh and faults.should_kill_replica(rid, seq):
                    os.kill(os.getpid(), signal.SIGKILL)
                if fresh:
                    runtime.maybe_refresh(seq)
                stall = faults.heartbeat_stall_seconds(rid, seq)
                if fresh and stall:
                    time.sleep(stall)
                endpoint.send(("ack", seq, runtime.applied))
            elif verb == "promote" and role == "replica":
                _verb, token, new_plan = message
                faults = new_plan if new_plan is not None else FaultPlan()
                service, replayed = runtime.promote()
                runtime = None
                role = "primary"
                endpoint.send(
                    ("promoted", token, service.batches_applied, replayed)
                )
            elif verb == "export_index" and role == "primary":
                _verb, token = message
                endpoint.send(
                    ("resp", token, True,
                     (service.index.export_state(),
                      service.batches_applied - service.batches_since_extract),
                     service.batches_applied)
                )
            else:  # pragma: no cover - protocol violation
                raise ValueError(f"unknown command {verb!r} for role {role}")
    finally:
        if service is not None:
            service.close()
        endpoint.close()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class _ReplicaState:
    """Supervisor-side ledger for one replica."""

    __slots__ = ("rid", "acked", "shipped", "pending", "stalled", "respawns")

    def __init__(self, rid: int):
        self.rid = rid
        self.acked = 0  #: highest seq the replica confirmed applied
        self.shipped = 0  #: highest seq the supervisor handed to the wire
        self.pending: Deque[int] = deque()  #: seqs not yet shipped
        self.stalled = False  #: heartbeat lapsed; client re-routes
        self.respawns = 0


class ServiceSupervisor:
    """Primary + N read replicas under one deterministic supervisor.

    >>> from repro.graph.generators import ring_of_cliques
    >>> from repro.api.config import AlgoConfig, ServicePlanConfig
    >>> config = ServicePlanConfig(
    ...     algo=AlgoConfig(seed=3, iterations=40), batch_size=2,
    ...     replicas=1, staleness_batches=2,
    ... )
    >>> # sup = ServiceSupervisor(ring_of_cliques(3, 4), "state/", config)
    >>> # sup.start(); sup.submit_insert(0, 5); ...; sup.shutdown()

    The supervisor windows edits exactly like the facade (same
    :class:`EditQueue` semantics), labels each drained batch with the
    next WAL sequence number, commits it to the primary, and ships the
    acknowledged record to every replica.  ``fault_plan`` scripts
    deterministic service-plane failures; see the module docstring for
    the failover protocol.
    """

    def __init__(
        self,
        graph: Graph,
        checkpoint_dir: str,
        config: Optional[Union[ServicePlanConfig, ServiceConfig]] = None,
        fault_plan: Optional[FaultPlan] = None,
        **overrides,
    ):
        from dataclasses import fields, replace

        if isinstance(config, ServiceConfig):
            config = config.as_plan_config()
        if config is None:
            config = ServicePlanConfig()
        # Accept both config vocabularies as keyword overrides: the
        # structured ServicePlanConfig fields (replicas=, max_failovers=)
        # and the facade's flat ServiceConfig fields (seed=, batch_size=).
        plan_fields = {f.name for f in fields(ServicePlanConfig)}
        flat_overrides = {
            k: v for k, v in overrides.items() if k not in plan_fields
        }
        plan_overrides = {
            k: v for k, v in overrides.items() if k in plan_fields
        }
        if flat_overrides:
            flat_cfg = replace(_flatten_plan_config(config), **flat_overrides)
            config = replace(
                flat_cfg.as_plan_config(config.execution),
                replicas=config.replicas,
                heartbeat_interval=config.heartbeat_interval,
                max_failovers=config.max_failovers,
                service_transport=config.service_transport,
            )
        if plan_overrides:
            config = replace(config, **plan_overrides)
        if config.replicas < 1:
            raise ValueError(
                "ServiceSupervisor requires replicas >= 1 in the "
                "ServicePlanConfig; an unreplicated deployment is plain "
                "CommunityService"
            )
        self.plan: ServiceRunPlan = resolve_service_plan(
            GraphCaps.of(graph), config
        )
        self._cfg: ServiceConfig = _flatten_plan_config(config)
        if not self._cfg.strict_edits:
            raise ValueError(
                "replication requires strict_edits=True: the shipped WAL "
                "record must be byte-identical to the record the primary "
                "logs, which the no-op filter would break"
            )
        if self._cfg.checkpoint_every < 1:
            raise ValueError(
                "replication requires checkpoint_every >= 1: replicas "
                "bootstrap (and promotions replay) from the shared "
                "checkpoint + WAL tail"
            )
        if checkpoint_dir is None:
            raise ValueError(
                "replication requires a checkpoint_dir: replicas bootstrap "
                "(and promotions replay) from the shared checkpoint + WAL"
            )
        self._graph = graph
        self._checkpoint_dir = str(checkpoint_dir)
        self._fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan()
        )
        self._fired_drops: set = set()
        self._queue = EditQueue(
            batch_size=self._cfg.batch_size, max_pending=self._cfg.max_pending
        )
        self._ctx = mp.get_context()
        self._wire: ServiceWire = SERVICE_TRANSPORTS.resolve(
            self.plan.service_transport
        )()
        self._processes: Dict[int, object] = {}
        self._replicas: Dict[int, _ReplicaState] = {}
        self._primary_cid = _PRIMARY_CID
        self._buffer: Dict[int, str] = {}  #: seq -> shipped WAL line
        self._committed_seq = 0
        self._latest_ckpt_epoch = 0
        self._bootstrap_index_state = None
        self._bootstrap_last_refresh = 0
        self._token = 0
        self._started = False
        self._closed = False
        # Supervisor-side observability: commit / ship / failover spans
        # and the replication metrics live here (children run untraced —
        # the supervisor clocks every cross-process exchange end to end).
        self.obs = _service_obs(config.execution)
        if self.obs is not None:
            self.obs.meta["mode"] = "replicated-service"
            self.obs.meta["replicas"] = config.replicas
        # Failover ledger (surfaced in stats()).
        self.failovers = 0
        self.promoted_replica: Optional[int] = None
        self.replayed_records = 0
        self.replica_respawns = 0
        self.wal_reships = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServiceSupervisor":
        """Spawn the primary (fit + baseline checkpoint) and the replicas."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._wire.bind(self._ctx)
        try:
            self._spawn_child(self._primary_cid, "primary", rid=-1)
            ready = self._wire.recv(self._primary_cid)
            self._bootstrap_index_state = ready[2]
            self._bootstrap_last_refresh = ready[3]
            for rid in range(self.plan.replicas):
                self._spawn_replica(rid, respawn=False)
        except BaseException:
            self.shutdown()
            raise
        self._started = True
        return self

    def _spawn_child(self, cid: int, role: str, rid: int,
                     fault_plan: Optional[FaultPlan] = None) -> None:
        endpoint = self._wire.child_endpoint(cid)
        process = self._ctx.Process(
            target=_service_child_main,
            args=(
                endpoint,
                role,
                rid,
                self._graph if role == "primary" else None,
                self._cfg,
                self._checkpoint_dir,
                fault_plan if fault_plan is not None else self._fault_plan,
            ),
            daemon=True,
        )
        process.start()
        self._processes[cid] = process
        self._wire.attach(cid, process)

    def _spawn_replica(self, rid: int, respawn: bool) -> None:
        """Spawn (or respawn) replica ``rid`` and bootstrap it.

        A respawned replica is healthy (its scripted faults are
        stripped) and bootstraps from the latest shared-disk checkpoint
        plus the supervisor's buffered tail — the same recipe as initial
        spawn, so the code path is exercised constantly, not only in
        disasters.
        """
        state = self._replicas.get(rid)
        if state is None:
            state = _ReplicaState(rid)
            self._replicas[rid] = state
        plan = self._fault_plan
        if respawn:
            self._wire.detach(rid)
            old = self._processes.pop(rid, None)
            if old is not None:
                old.join(timeout=1.0)
            state.respawns += 1
            self.replica_respawns += 1
            plan = plan.without_replica(rid)
            self._fault_plan = plan
        if respawn and self._bootstrap_index_state is not None:
            # Re-export the primary's index state so the replacement
            # lands on the current id trajectory, not the start-of-run
            # one (stable ids are path-dependent).
            try:
                index_state, last_refresh = self._request_primary_export()
                self._bootstrap_index_state = index_state
                self._bootstrap_last_refresh = last_refresh
            except ChildCrashedError:
                self._handle_primary_crash(in_flight=None)
                index_state, last_refresh = self._request_primary_export()
                self._bootstrap_index_state = index_state
                self._bootstrap_last_refresh = last_refresh
        self._spawn_child(rid, "replica", rid=rid, fault_plan=plan)
        lines = [
            self._buffer[seq]
            for seq in sorted(self._buffer)
            if seq <= self._committed_seq
        ]
        self._wire.send(
            rid,
            ("bootstrap", self._bootstrap_index_state,
             self._bootstrap_last_refresh, lines),
        )
        ready = self._wire.recv(rid)
        state.acked = ready[1]
        state.shipped = max(state.acked, self._committed_seq)
        state.pending.clear()
        state.stalled = False

    def _request_primary_export(self) -> Tuple[object, int]:
        payload, _applied = self._query_child(
            self._primary_cid, "export_index", (), timeout=None
        )
        return payload

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def submit(self, op: str, u: int, v: int,
               timeout: Optional[float] = None) -> Optional[int]:
        """Offer one edit; commits a batch when the window fills.

        Returns the committed WAL sequence when this edit completed a
        window, else ``None``.
        """
        self._require_started()
        self._queue.offer(op, u, v, timeout=timeout)
        if self._queue.ready:
            return self.flush()
        return None

    def submit_insert(self, u: int, v: int,
                      timeout: Optional[float] = None) -> Optional[int]:
        return self.submit("+", u, v, timeout=timeout)

    def submit_delete(self, u: int, v: int,
                      timeout: Optional[float] = None) -> Optional[int]:
        return self.submit("-", u, v, timeout=timeout)

    def flush(self) -> Optional[int]:
        """Drain the window and commit the net batch now (empty → no-op)."""
        self._require_started()
        batch = self._queue.drain()
        if not batch:
            return None
        return self._commit(batch)

    def apply(self, batch: EditBatch) -> Optional[int]:
        """Commit a pre-built batch (bulk ingest path); flushes first."""
        self._require_started()
        if self._queue.pending:
            self.flush()
        if not batch:
            return None
        return self._commit(batch)

    def _commit(self, batch: EditBatch) -> int:
        """Label, commit to the primary, and replicate one batch."""
        seq = self._committed_seq + 1
        line = encode_wal_record(seq, batch)
        self._buffer[seq] = line
        obs = self.obs
        commit_start = time.time_ns() if obs is not None else 0
        ack = self._apply_on_primary(seq, line)
        _verb, _seq, ok, error, applied, ckpt_epoch = ack
        if not ok:
            # Validation failed before anything durable happened: the
            # sequence number is not consumed and the error surfaces to
            # the caller exactly as the unreplicated facade would raise.
            del self._buffer[seq]
            raise error
        self._committed_seq = applied
        self._latest_ckpt_epoch = max(self._latest_ckpt_epoch, ckpt_epoch)
        if obs is not None:
            obs.trace.record(
                "service.commit", commit_start, plane="service", superstep=seq
            )
            obs.metrics.counter("service.records_committed").inc()
        for state in self._replicas.values():
            state.pending.append(seq)
        self._pump_replicas()
        self._prune_buffer()
        return seq

    def _apply_on_primary(self, seq: int, line: str):
        """Send one apply and wait for its ack, failing over as needed."""
        while True:
            try:
                self._wire.send(self._primary_cid, ("apply", seq, line))
                ack = self._recv_primary_ack(seq)
                return ack
            except ChildCrashedError:
                self._handle_primary_crash(in_flight=(seq, line))
                # Loop: re-send to the promoted primary (idempotent if
                # the record was already durable before the crash).

    def _recv_primary_ack(self, seq: int):
        while True:
            message = self._wire.recv(self._primary_cid)
            if message[0] == "applied" and message[1] == seq:
                return message
            # Anything else is a stale response from an interrupted
            # exchange (e.g. a query the client timed out on); drop it.

    # ------------------------------------------------------------------
    # Replication pump
    # ------------------------------------------------------------------
    def _absorb(self, state: _ReplicaState) -> None:
        """Drain late messages (acks after a stall) without blocking."""
        while self._wire.poll(state.rid):
            message = self._wire.recv(state.rid, timeout=0)
            if message is TIMEOUT:
                break
            if message[0] == "ack":
                state.acked = max(state.acked, message[2])
                state.stalled = False
            elif message[0] == "nack":
                self._renact(state, message[1])

    def _renact(self, state: _ReplicaState, applied: int) -> None:
        """Reset a replica's pending window after a nack (gap/corruption)."""
        state.acked = applied
        state.pending = deque(
            range(applied + 1, max(state.shipped, self._committed_seq) + 1)
        )
        self.wal_reships += 1

    def _pump_replicas(self) -> None:
        for rid in sorted(self._replicas):
            self._pump(self._replicas[rid])

    def _pump(self, state: _ReplicaState) -> None:
        """Ship this replica's pending records, one synchronous ack each."""
        self._absorb(state)
        guard = 0
        while guard < 10_000:  # defensive: every path below makes progress
            guard += 1
            if not state.pending:
                if state.stalled or state.acked >= self._committed_seq:
                    return
                # Tail gap (a dropped final record): re-ship the rest.
                self._renact(state, state.acked)
            seq = state.pending.popleft()
            if seq <= state.acked:
                continue
            if seq not in self._buffer:
                # Rotated out from under a lagging replica: a respawn
                # bootstraps it from the checkpoint that superseded the
                # missing records.
                self._spawn_replica(state.rid, respawn=True)
                return
            drop_site = (state.rid, seq)
            if (self._fault_plan.should_drop_wal_record(*drop_site)
                    and drop_site not in self._fired_drops):
                # Scripted in-transit loss: the supervisor believes the
                # record shipped; the replica's gap detection must nack.
                self._fired_drops.add(drop_site)
                state.shipped = max(state.shipped, seq)
                continue
            obs = self.obs
            ship_start = time.time_ns() if obs is not None else 0
            try:
                self._wire.send(state.rid, ("wal", seq, self._buffer[seq]))
                state.shipped = max(state.shipped, seq)
                reply = self._wire.recv(
                    state.rid, timeout=self.plan.heartbeat_interval
                )
            except ChildCrashedError:
                self._spawn_replica(state.rid, respawn=True)
                return
            if obs is not None and reply is not TIMEOUT:
                obs.trace.record(
                    "service.wal_ship", ship_start, plane="service",
                    worker=state.rid, superstep=seq,
                )
                obs.metrics.counter("service.wal_records_shipped").inc()
            if reply is TIMEOUT:
                # Heartbeat lapse: stop pumping and let the client
                # re-route meanwhile.  The record is in flight, not lost
                # — its ack is absorbed on the next pump, and if it never
                # comes the tail-gap check re-ships from ``acked``.
                state.stalled = True
                return
            if reply[0] == "ack":
                state.acked = max(state.acked, reply[2])
                state.stalled = False
            elif reply[0] == "nack":
                self._renact(state, reply[1])

    def _prune_buffer(self) -> None:
        """Drop buffered lines a durable checkpoint made redundant.

        Records at or below the latest announced checkpoint epoch are
        recoverable from shared disk, so a replica that still needs them
        (it lagged past the buffer) is respawned from that checkpoint
        instead of re-shipped.
        """
        if not self._latest_ckpt_epoch:
            return
        floor = min(
            [self._latest_ckpt_epoch]
            + [state.acked for state in self._replicas.values()
               if not state.stalled]
        )
        for seq in [s for s in self._buffer if s <= floor]:
            del self._buffer[seq]

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _handle_primary_crash(
        self, in_flight: Optional[Tuple[int, str]]
    ) -> None:
        """Promote the freshest replica and resume, or give up loudly."""
        obs = self.obs
        failover_start = time.time_ns() if obs is not None else 0
        self.failovers += 1
        if self.failovers > self.plan.max_failovers:
            raise FailoverExhaustedError(
                f"primary died {self.failovers} time(s); max_failovers="
                f"{self.plan.max_failovers} exhausted"
            )
        self._wire.detach(self._primary_cid)
        old = self._processes.pop(self._primary_cid, None)
        if old is not None:
            old.join(timeout=1.0)
        if not self._replicas:
            raise FailoverExhaustedError(
                "primary died with no replicas left to promote"
            )
        logger.warning(
            "primary died (failover %d); electing the freshest replica",
            self.failovers,
        )
        # Freshest replica = highest applied WAL seq; ties break to the
        # lowest rid so elections are deterministic.
        statuses: Dict[int, int] = {}
        dead: List[int] = []
        for rid in sorted(self._replicas):
            state = self._replicas[rid]
            try:
                self._absorb(state)
                applied, _ = self._query_child(
                    rid, "status", (), timeout=None
                )
            except ChildCrashedError:
                # A dead replica cannot stand for election; respawn it
                # after a new primary exists to export index state from.
                dead.append(rid)
                continue
            statuses[rid] = applied
        if not statuses:
            raise FailoverExhaustedError(
                "primary died and every replica is dead too; nothing "
                "left to promote"
            )
        promoted = max(sorted(statuses), key=lambda rid: statuses[rid])
        # Strip the fired kill so the promoted primary cannot re-fire it.
        # Exactly this record was in flight when the crash happened, so
        # the fired site is whichever phase is scripted at its seq (a
        # "recv" kill fires before an "applied" one could).
        if in_flight is not None:
            seq = in_flight[0]
            for phase in ("recv", "applied"):
                if self._fault_plan.should_kill_primary(seq, phase):
                    self._fault_plan = self._fault_plan.without_kill_primary(
                        seq, phase
                    )
                    break
        plan = self._fault_plan.without_replica(promoted)
        self._fault_plan = plan
        token = self._next_token()
        self._wire.send(promoted, ("promote", token, plan))
        while True:
            reply = self._wire.recv(promoted)
            if reply[0] == "promoted" and reply[1] == token:
                break
        _verb, _token, applied, replayed = reply
        self.replayed_records += replayed
        self.promoted_replica = promoted
        self._replicas.pop(promoted)
        self._primary_cid = promoted
        self._committed_seq = max(self._committed_seq, applied)
        logger.warning(
            "promoted replica %d at seq %d (%d record(s) replayed)",
            promoted, applied, replayed,
        )
        for rid in dead:
            self._spawn_replica(rid, respawn=True)
        if obs is not None:
            obs.trace.record(
                "service.failover", failover_start, plane="service",
                worker=promoted, superstep=self._committed_seq,
            )
            obs.metrics.counter("service.failovers").inc()

    # ------------------------------------------------------------------
    # Query plane (used by ReplicatedClient)
    # ------------------------------------------------------------------
    def _next_token(self) -> int:
        self._token += 1
        return self._token

    def _query_child(self, cid: int, kind: str, args: tuple,
                     timeout: Optional[float]):
        """One token-tagged query; stale responses are discarded."""
        token = self._next_token()
        if kind == "export_index":
            self._wire.send(cid, ("export_index", token))
        else:
            self._wire.send(cid, ("query", token, kind, args))
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            message = self._wire.recv(cid, timeout=remaining)
            if message is TIMEOUT:
                raise ReplicaLapsedError(
                    f"child {cid} missed the {timeout:.3f}s window"
                )
            if message[0] == "resp" and message[1] == token:
                _verb, _token, ok, payload, applied = message
                if not ok:
                    raise payload
                return payload, applied
            if message[0] == "ack" and cid in self._replicas:
                state = self._replicas[cid]
                state.acked = max(state.acked, message[2])
                state.stalled = False
            # Otherwise: a stale tokened response; drop and keep waiting.

    def query_primary(self, kind: str, args: tuple = ()):  # crash-aware
        """Query the primary (blocking, surviving failovers)."""
        self._require_started()
        while True:
            try:
                payload, applied = self._query_child(
                    self._primary_cid, kind, args, timeout=None
                )
                return payload, applied
            except ChildCrashedError:
                self._handle_primary_crash(in_flight=None)

    def query_replica(self, rid: int, kind: str, args: tuple,
                      timeout: Optional[float]):
        """Query one replica; lapses mark it stalled for re-routing."""
        self._require_started()
        state = self._replicas[rid]
        self._pump(state)
        if state.stalled:
            raise ReplicaLapsedError(f"replica {rid} heartbeat lapsed")
        try:
            return self._query_child(rid, kind, args, timeout=timeout)
        except ReplicaLapsedError:
            state.stalled = True
            raise
        except ChildCrashedError:
            self._spawn_replica(rid, respawn=True)
            raise ReplicaLapsedError(f"replica {rid} died; respawned")

    def live_replicas(self) -> List[int]:
        """Replica ids currently eligible for queries (not lapsed)."""
        return [
            rid for rid in sorted(self._replicas)
            if not self._replicas[rid].stalled
        ]

    def client(self, timeout: Optional[float] = None,
               attempts: int = 4) -> "ReplicatedClient":
        """A query client over this topology (see :class:`ReplicatedClient`)."""
        return ReplicatedClient(self, timeout=timeout, attempts=attempts)

    # ------------------------------------------------------------------
    # Introspection & shutdown
    # ------------------------------------------------------------------
    @property
    def committed_seq(self) -> int:
        """Highest WAL sequence the primary has acknowledged durable."""
        return self._committed_seq

    def stats(self) -> Dict[str, object]:
        """Primary service stats + the supervisor's failover ledger."""
        self._require_started()
        payload, _applied = self.query_primary("stats")
        payload = dict(payload)
        payload["failovers"] = self.failovers
        payload["promoted_replica"] = self.promoted_replica
        payload["replayed_records"] = self.replayed_records
        payload["replica_respawns"] = self.replica_respawns
        payload["wal_reships"] = self.wal_reships
        payload["committed_seq"] = self._committed_seq
        payload["replicas"] = {
            rid: {
                "acked": state.acked,
                "stalled": state.stalled,
                "respawns": state.respawns,
            }
            for rid, state in sorted(self._replicas.items())
        }
        if self.obs is not None:
            payload["supervisor_metrics"] = self.obs.metrics.snapshot()
        return payload

    def trace_result(self):
        """The supervisor's :class:`~repro.obs.TraceResult`, or ``None``.

        Covers the replication plane only (commit / ship / failover spans);
        the children run untraced so the clock never crosses a process
        boundary.
        """
        if self.obs is None:
            return None
        return self.obs.result(
            {
                "committed_seq": self._committed_seq,
                "failovers": self.failovers,
            }
        )

    def snapshot(self) -> Dict[int, frozenset]:
        """The primary's ``stable id -> members`` map (bit-identity probe)."""
        payload, _applied = self.query_primary("snapshot")
        return payload

    def finish(self) -> ReplicatedRunResult:
        """Drain replication, collect the final result, and shut down."""
        self._require_started()
        self.flush()
        self._pump_replicas()
        snapshot = self.snapshot()
        stats = self.stats()
        self.shutdown()
        from repro.core.communities import Cover

        cover = Cover([snapshot[cid] for cid in sorted(snapshot)])
        return ReplicatedRunResult(cover=cover, stats=stats, plan=self.plan)

    def shutdown(self) -> None:
        """Stop every child and release the wire (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for cid, process in list(self._processes.items()):
            try:
                self._wire.send(cid, ("stop",))
            except (ChildCrashedError, KeyError, OSError):
                pass
        for cid, process in list(self._processes.items()):
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck child
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
        self._processes.clear()
        self._wire.close()

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("supervisor not started; call start() first")
        if self._closed:
            raise RuntimeError("supervisor is shut down")

    def __enter__(self) -> "ServiceSupervisor":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ServiceSupervisor(replicas={sorted(self._replicas)}, "
            f"committed_seq={self._committed_seq}, "
            f"failovers={self.failovers})"
        )


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class ReplicatedClient:
    """Queries over the topology: timeout, retry, re-route, never error.

    Each request walks the live replicas round-robin under a per-request
    timeout; a lapse (the resolved ``heartbeat_interval`` by default)
    marks the replica stalled and re-routes to the next.  Between
    attempts the client sleeps a jittered exponential backoff
    (:class:`~repro.utils.backoff.JitteredBackoff`, keyed by the service
    seed and the request number — deterministic per run, decorrelated
    across requests).  The final fallback queries the primary with a
    crash-aware blocking wait that survives failovers, so a query can be
    served stale (counted in :attr:`stale_serves`) but never errors for
    availability reasons; only genuine semantic errors (e.g. ``KeyError``
    for a dead community id) propagate.
    """

    def __init__(self, supervisor: ServiceSupervisor,
                 timeout: Optional[float] = None, attempts: int = 4):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self._sup = supervisor
        self._timeout = (
            timeout if timeout is not None
            else supervisor.plan.heartbeat_interval
        )
        self._attempts = attempts
        self._rr = 0
        self._requests = 0
        self.queries_served = 0
        self.stale_serves = 0
        self.reroutes = 0
        self.primary_fallbacks = 0

    def communities_of(self, vertex: int) -> Tuple[int, ...]:
        return self._query("communities_of", (vertex,))

    def members(self, cid: int) -> frozenset:
        return self._query("members", (cid,))

    def overlap(self, u: int, v: int) -> Tuple[int, ...]:
        return self._query("overlap", (u, v))

    def stats(self) -> Dict[str, object]:
        return self._query("stats", ())

    def _query(self, kind: str, args: tuple):
        self._requests += 1
        backoff = JitteredBackoff(
            0.01,
            attempts=self._attempts,
            key=(self._sup.plan.requested.algo.seed, self._requests, kind),
        )
        delays = backoff.delays()
        for attempt in range(self._attempts - 1):
            live = self._sup.live_replicas()
            if not live:
                break
            rid = live[self._rr % len(live)]
            self._rr += 1
            try:
                payload, applied = self._sup.query_replica(
                    rid, kind, args, timeout=self._timeout
                )
            except ReplicaLapsedError:
                self.reroutes += 1
                time.sleep(next(delays))
                continue
            self.queries_served += 1
            if applied < self._sup.committed_seq:
                self.stale_serves += 1
            return payload
        # Last resort: the primary, blocking and failover-surviving.
        self.primary_fallbacks += 1
        payload, _applied = self._sup.query_primary(kind, args)
        self.queries_served += 1
        return payload

    def __repr__(self) -> str:
        return (
            f"ReplicatedClient(served={self.queries_served}, "
            f"stale={self.stale_serves}, reroutes={self.reroutes})"
        )
