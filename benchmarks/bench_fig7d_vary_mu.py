"""Figure 7d — NMI vs mixing parameter µ (SLPA vs rSLPA).

Paper: SLPA's score is nearly unchanged as µ grows 0.1 -> 0.3; rSLPA stays
high but drops slowly — it has "less ability to detect better-mixed
communities".
"""

from benchmarks.bench_common import banner, print_table
from benchmarks.fig7_common import default_params, sweep_panel

MIXINGS = [0.1, 0.15, 0.2, 0.25, 0.3]


def test_fig7d_vary_mu(benchmark, report):
    rows = benchmark.pedantic(
        lambda: sweep_panel(MIXINGS, lambda mu: default_params(mu=mu)),
        rounds=1,
        iterations=1,
    )
    report(
        banner(
            "Figure 7d: NMI when varying mixing parameter mu",
            "SLPA ~flat; rSLPA high but drops slowly as mu grows",
            "harder mixing hurts rSLPA more than SLPA",
        )
    )
    print_table(report, ["mu", "SLPA NMI", "rSLPA NMI"], rows)

    slpa_scores = [r[1] for r in rows]
    rslpa_scores = [r[2] for r in rows]
    # rSLPA degrades with mixing (paper's observation).
    assert rslpa_scores[-1] <= rslpa_scores[0] + 0.05
    # both stay well above chance at the easy end.
    assert slpa_scores[0] > 0.5
    assert rslpa_scores[0] > 0.4
