"""Ablation: execution backends — reference vs vectorised vs distributed.

The counter-based randomness makes every backend produce bit-identical
label states for one seed; this harness verifies the equality on a shared
instance and reports the relative throughput of each backend (the vectorised
engine is what makes paper-scale Figure 7 sweeps feasible in Python).
"""

import time

from benchmarks.bench_common import banner, print_table, scaled
from repro.core.fast import FastPropagator
from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import run_distributed_rslpa
from repro.graph.generators import erdos_renyi

N = scaled(600, 2000, 10_000)
ITERATIONS = scaled(40, 60, 100)


def test_backend_equality_and_throughput(benchmark, report):
    graph = erdos_renyi(N, 10 / (N - 1), seed=4)

    timings = {}

    def run_all():
        t0 = time.perf_counter()
        ref = ReferencePropagator(graph.copy(), seed=9)
        ref.propagate(ITERATIONS)
        timings["reference"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        fast = FastPropagator(graph.copy(), seed=9)
        fast.propagate(ITERATIONS)
        timings["vectorised"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        dist_state, _stats = run_distributed_rslpa(
            graph.copy(), seed=9, iterations=ITERATIONS, num_workers=4
        )
        timings["distributed (4 workers, simulated)"] = time.perf_counter() - t0
        return ref, fast, dist_state

    ref, fast, dist_state = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Bit-equality across all three backends.
    for v in range(N):
        assert fast.labels[:, v].tolist() == ref.state.labels[v]
    assert dist_state.labels == ref.state.labels

    report(
        banner(
            "Ablation: backend equivalence and throughput",
            "(design property; enables honest cross-backend benchmarks)",
            "identical label states; vectorised fastest; simulated cluster pays "
            "message-routing overhead",
        )
    )
    picks = N * ITERATIONS
    rows = [
        (name, round(seconds, 3), round(picks / seconds / 1e3, 1))
        for name, seconds in timings.items()
    ]
    print_table(report, ["backend", "seconds", "picks/ms"], rows)
    assert timings["vectorised"] < timings["reference"]
