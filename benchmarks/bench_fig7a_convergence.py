"""Figure 7a — rSLPA NMI vs iteration count T, for several graph sizes.

Paper: "for different N, it gives a relatively stable result when T >= 200";
the NMI climbs with T and flattens.  We sweep T by propagating once to the
maximum horizon and re-running the post-processing on prefix checkpoints
(propagation is strictly append-only, so a prefix equals a shorter run).
"""

from benchmarks.bench_common import banner, print_series, scaled
from repro.core.fast import FastPropagator
from repro.core.postprocess import extract_communities
from repro.metrics.nmi import nmi_overlapping
from repro.workloads.lfr import LFRParams, generate_lfr

SIZES = scaled([600, 1000, 1500], [2000, 4000, 6000], [10_000, 20_000, 50_000])
CHECKPOINTS = scaled(
    [25, 50, 100, 150, 200, 300],
    [50, 100, 200, 400, 600],
    [100, 200, 400, 600, 800, 1000],
)
TAU_STEP = 0.005


def _nmi_at_checkpoints(n: int, seed: int):
    params = LFRParams(
        n=n,
        avg_degree=scaled(16.0, 24.0, 30.0),
        max_degree=scaled(40, 70, 100),
        mu=0.1,
        overlap_fraction=0.1,
        overlap_membership=2,
    )
    lfr = generate_lfr(params, seed=seed)
    fast = FastPropagator(lfr.graph, seed=seed)
    scores = []
    done = 0
    for horizon in CHECKPOINTS:
        fast.propagate(horizon - done)
        done = horizon
        sequences = {v: fast.labels[:, v].tolist() for v in range(n)}
        result = extract_communities(lfr.graph, sequences, step=TAU_STEP)
        scores.append(
            nmi_overlapping(result.cover.as_sets(), lfr.communities, n)
        )
    return scores


def test_fig7a_convergence(benchmark, report):
    report(
        banner(
            "Figure 7a: NMI vs iterations T (rSLPA)",
            "NMI stabilises for T >= 200 at every graph size",
            "score climbs with T then flattens; larger N not slower to converge",
        )
    )
    series = {}
    for n in SIZES[:-1]:
        series[n] = _nmi_at_checkpoints(n, seed=1)

    # benchmark the largest size end-to-end (single round).
    largest = SIZES[-1]
    series[largest] = benchmark.pedantic(
        lambda: _nmi_at_checkpoints(largest, seed=1), rounds=1, iterations=1
    )

    for n, ys in series.items():
        print_series(report, f"N={n}", CHECKPOINTS, ys)

    for n, ys in series.items():
        # Late scores must not collapse relative to the peak (stability) and
        # the tail should beat the earliest checkpoint (convergence upward).
        assert max(ys) - ys[-1] < 0.25, f"N={n}: tail collapsed: {ys}"
        assert ys[-1] >= ys[0] - 0.1, f"N={n}: no improvement with T: {ys}"
