"""Lint-pass benchmark — full-tree ``repro lint`` wall time.

The `repro-lint` CI job runs the whole invariant pack on every push, so
its wall time is part of the edit-compile-test loop.  This harness times
a full ``src/repro`` pass (parse + all registered rules + suppression
audit) and records the numbers in ``BENCH_lint.json`` at the repository
root, so rule-pack growth that makes the lint pass crawl shows up as a
tracked regression rather than a slowly souring CI job.

Run:  PYTHONPATH=src:. python -m pytest benchmarks/bench_lint.py -q
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.bench_common import SCALE, banner, print_table
from repro.analysis import all_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_lint.json"
TREE = REPO_ROOT / "src" / "repro"

REPEATS = 3


def test_lint_full_tree_smoke(report):
    rules = all_rules()

    best = float("inf")
    reports = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        reports = lint_paths([TREE], rules=rules)
        best = min(best, time.perf_counter() - t0)

    files = reports.files_checked
    per_file_ms = 1000.0 * best / files if files else 0.0

    report(
        banner(
            "Full-tree lint pass (repro lint src/repro)",
            "n/a (project infrastructure, not a paper figure)",
            "well under the 5-minute CI job timeout; shipped tree clean",
        )
    )
    print_table(
        report,
        ("pass", "files", "rules", "wall s", "ms/file", "findings"),
        [(
            "src/repro",
            files,
            len(rules),
            round(best, 3),
            round(per_file_ms, 2),
            len(reports.findings),
        )],
    )

    payload = {
        "benchmark": "lint_full_tree",
        "scale": SCALE,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": {
            "files_checked": files,
            "rules": len(rules),
            "wall_s": best,
            "ms_per_file": per_file_ms,
            "findings": len(reports.findings),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    report(f"results recorded in {RESULT_PATH}")

    # Shape assertions: the tree ships clean, and a full pass must stay
    # interactive — seconds, not the CI timeout.
    assert reports.exit_code() == 0
    assert files >= 75
    assert best < 60.0
