"""Figure 7b — NMI vs graph size N (SLPA vs rSLPA).

Paper: "Both algorithms have very high and stable scores, and the difference
between two algorithms is small" as N grows from 10,000 to 50,000.
"""

from benchmarks.bench_common import banner, print_table, scaled
from benchmarks.fig7_common import default_params, sweep_panel

SIZES = scaled(
    [600, 800, 1000, 1300, 1600],
    [2000, 3000, 4000, 5000],
    [10_000, 20_000, 30_000, 40_000, 50_000],
)


def test_fig7b_vary_n(benchmark, report):
    rows = benchmark.pedantic(
        lambda: sweep_panel(SIZES, lambda n: default_params(n=n)),
        rounds=1,
        iterations=1,
    )
    report(
        banner(
            "Figure 7b: NMI when varying N",
            "both high and stable; small difference between algorithms",
            "no systematic degradation as N grows",
        )
    )
    print_table(report, ["N", "SLPA NMI", "rSLPA NMI"], rows)

    slpa_scores = [r[1] for r in rows]
    rslpa_scores = [r[2] for r in rows]
    # Stability: scores do not trend down with size.
    assert min(slpa_scores) > max(slpa_scores) - 0.3
    assert min(rslpa_scores) > max(rslpa_scores) - 0.3
    # Both well above chance everywhere.
    assert min(slpa_scores) > 0.4
    assert min(rslpa_scores) > 0.4
