"""Ablation: smoothing the voting process (Figures 2-3, Theorem 1).

Reproduces the exact win distributions the paper uses to motivate rSLPA:
plurality voting is discontinuous and two-level; uniform picking is smooth
and proportional to label populations.  Also verifies Theorem 1
(max Pu <= max Pv) numerically over random instances.
"""

import random
from fractions import Fraction

from benchmarks.bench_common import banner, print_table
from repro.core.voting import (
    distribution_levels,
    max_win_probability,
    plurality_win_distribution,
    uniform_pick_from_multiset,
)

FIGURE2_PANELS = {
    "(a) voters (1,2),(1,2),(1,1)": [(1, 2), (1, 2), (1, 1)],
    "(b) voters (1,2),(1,2),(1,3)": [(1, 2), (1, 2), (1, 3)],
    "(c) voters (2,2),(1,1),(1,1)": [(2, 2), (1, 1), (1, 1)],
    "(d) voters (2,2),(1,1)": [(2, 2), (1, 1)],
}

FIGURE3_MULTISET = (1, 2, 2, 2, 3, 3, 3, 4, 4, 5)


def test_figure2_win_distributions(benchmark, report):
    distributions = benchmark(
        lambda: {
            name: plurality_win_distribution(voters)
            for name, voters in FIGURE2_PANELS.items()
        }
    )
    report(
        banner(
            "Figure 2: plurality-voting win distributions (exact)",
            "tiny voter edits reshuffle every label's winning probability",
            "panel (b) perturbs untouched label 2; panel (d) revives label 2",
        )
    )
    rows = []
    for name, dist in distributions.items():
        for label in sorted(set(dist) | {1, 2, 3}):
            rows.append((name, label, str(dist.get(label, Fraction(0))),
                         float(dist.get(label, Fraction(0)))))
    print_table(report, ["panel", "label", "P(win) exact", "P(win)"], rows)

    a, b = distributions["(a) voters (1,2),(1,2),(1,1)"], distributions[
        "(b) voters (1,2),(1,2),(1,3)"
    ]
    report(
        "note: the paper's prose says label 2 'drops' in (b); exact "
        f"enumeration gives {a[2]} -> {b[2]} (it rises) — either way the "
        "side-effect on an untouched label is real. See EXPERIMENTS.md."
    )
    d = distributions["(d) voters (2,2),(1,1)"]
    assert d[2] == Fraction(1, 2)  # the paper's 0 -> 0.5 jump


def test_figure3_smoothness(benchmark, report):
    def compute():
        voting = plurality_win_distribution([(l,) for l in FIGURE3_MULTISET])
        uniform = uniform_pick_from_multiset(FIGURE3_MULTISET)
        return voting, uniform

    voting, uniform = benchmark(compute)
    report(
        banner(
            "Figure 3: voting vs uniform-picking on Mi = (1,2,2,2,3,3,3,4,4,5)",
            "voting: two-level (only 2 and 3 can win); uniform: proportional",
            "uniform picking has more probability levels (smoother)",
        )
    )
    rows = [
        (label, float(voting.get(label, Fraction(0))), float(uniform[label]))
        for label in sorted(uniform)
    ]
    print_table(report, ["label", "voting P(win)", "uniform P(pick)"], rows)
    report(
        f"levels: voting={distribution_levels(voting)}, "
        f"uniform={distribution_levels(uniform)}"
    )
    assert distribution_levels(uniform) > distribution_levels(voting)


def test_theorem1_numeric(benchmark, report):
    """max Pu <= max Pv over 500 random received multisets M_i.

    Theorem 1 is stated for a *given* multiset M_i: voting = plurality over
    M_i (ties uniform), uniform = one uniform draw from M_i.  (It does not
    extend to compound multi-label voters, where the received multiset is
    itself random.)
    """

    def verify():
        rng = random.Random(0)
        worst_gap = -1.0
        for _ in range(500):
            multiset = [rng.randint(1, 5) for _ in range(rng.randint(1, 10))]
            voting = plurality_win_distribution([(label,) for label in multiset])
            uniform = uniform_pick_from_multiset(multiset)
            pu = float(max_win_probability(uniform))
            pv = float(max_win_probability(voting))
            assert pu <= pv + 1e-12, f"Theorem 1 violated on {multiset}"
            worst_gap = max(worst_gap, pu - pv)
        return worst_gap

    worst = benchmark.pedantic(verify, rounds=1, iterations=1)
    report(
        banner(
            "Theorem 1 (numeric): max Pu(l) <= max Pv(l) for any multiset Mi",
            "uniform picking is never more concentrated than voting",
            "zero violations over 500 random multisets",
        )
    )
    report(f"largest (Pu - Pv) observed: {worst:.3e} (must be <= 0)")
