"""Ablation: per-iteration communication — rSLPA O(|V|) vs SLPA O(|E|).

Section III-A: replacing the full received multiset with a single fetched
label cuts the labels moved per iteration from one per directed edge to one
(request + reply) per vertex.  We measure actual message counts on the BSP
engine across graph densities, and the O(η) cost of Correction Propagation.
"""

from benchmarks.bench_common import banner, print_table, scaled
from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import (
    run_distributed_rslpa,
    run_distributed_slpa,
    run_distributed_update,
)
from repro.graph.generators import erdos_renyi
from repro.workloads.dynamic import random_edit_batch

N = scaled(300, 1000, 4000)
ITERATIONS = 10
DEGREES = [4, 8, 16, 32]


def test_message_volume_by_density(benchmark, report):
    rows = []

    def run():
        for k in DEGREES:
            graph = erdos_renyi(N, k / (N - 1), seed=k)
            _, rslpa_stats = run_distributed_rslpa(
                graph.copy(), seed=1, iterations=ITERATIONS, num_workers=4
            )
            _, slpa_stats = run_distributed_slpa(
                graph.copy(), seed=1, iterations=ITERATIONS, num_workers=4
            )
            rows.append(
                (
                    k,
                    graph.num_edges,
                    rslpa_stats.total_messages // ITERATIONS,
                    slpa_stats.total_messages // ITERATIONS,
                    round(
                        slpa_stats.total_messages / max(rslpa_stats.total_messages, 1),
                        2,
                    ),
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Communication: labels per iteration, rSLPA fetch vs SLPA push",
            "rSLPA O(|V|) per iteration; SLPA O(|E|) per iteration",
            "SLPA volume grows with density; rSLPA stays flat at 2|V|",
        )
    )
    report(f"graph: |V|={N}, workers=4, iterations={ITERATIONS}")
    print_table(
        report,
        ["avg degree", "|E|", "rSLPA msgs/iter", "SLPA msgs/iter", "SLPA/rSLPA"],
        rows,
    )

    # rSLPA volume is density-independent; SLPA volume grows.
    rslpa_per_iter = [row[2] for row in rows]
    slpa_per_iter = [row[3] for row in rows]
    assert max(rslpa_per_iter) <= 2 * N
    assert slpa_per_iter[-1] > slpa_per_iter[0] * 4
    assert rows[-1][4] > rows[0][4]


def test_correction_volume_scales_with_eta(benchmark, report):
    graph = erdos_renyi(N, 8 / (N - 1), seed=3)

    rows = []

    def run():
        for batch_size in scaled([4, 16, 64], [10, 100, 1000], [100, 1000]):
            g = graph.copy()
            propagator = ReferencePropagator(g, seed=5)
            propagator.propagate(20)
            batch = random_edit_batch(g, batch_size, seed=batch_size)
            _, _, stats = run_distributed_update(
                g, propagator.state, batch, seed=5, batch_epoch=1, num_workers=4
            )
            rows.append((batch_size, stats.total_messages, stats.supersteps))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Communication: Correction Propagation message volume is O(eta)",
            "only vertices near changed edges communicate",
            "messages grow with batch size, far below a full re-run",
        )
    )
    full_run_messages = 2 * N * 20
    print_table(report, ["batch", "messages", "supersteps"], rows)
    report(f"(full re-propagation would move ~{full_run_messages} messages)")
    assert rows[0][1] < full_run_messages
