"""Ablation: per-iteration communication — rSLPA O(|V|) vs SLPA O(|E|) —
plus the engine sweep: columnar vs tuple message plane with wall-clock.

Section III-A: replacing the full received multiset with a single fetched
label cuts the labels moved per iteration from one per directed edge to one
(request + reply) per vertex.  We measure actual message counts on the BSP
engine across graph densities, and the O(η) cost of Correction Propagation.

The ``engine sweep`` harness runs rSLPA and SLPA across
``engine={reference,array}`` × ``shard_backend={dict,csr}`` on LFR
instances, asserts all combinations bit-identical, and records messages,
bytes and wall-clock per superstep in ``BENCH_distributed.json`` — so the
comm-volume figures finally come with timings.

The ``transport sweep`` harness measures the multiprocess data plane:
workers × ``transport={pipe,shm,tcp}``.  An SLPA pass on LFR asserts
bit-identical memories, covers and per-superstep CommStats across every
transport, and a payload-heavy ballast relay (wide bench-only schema,
near-zero compute) isolates the data-plane cost that whole-algorithm
runs hide behind shared compute — the zero-copy shm plane must beat the
pickled pipe plane by the scale's floor at the widest worker count.

Run:  PYTHONPATH=src:. python -m pytest benchmarks/bench_ablation_communication.py -q
The ``-k smoke`` selection runs a scaled-down, time-bounded sweep (CI).
"""

import gc
import json
import time
from collections import Counter
from functools import partial
from pathlib import Path

import numpy as np

from benchmarks.bench_common import SCALE, banner, print_table, scaled
from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import (
    run_distributed_rslpa,
    run_distributed_slpa,
    run_distributed_update,
)
from repro.distributed.engine_array import ArrayBSPEngine, ArrayWorkerProgram
from repro.distributed.faults import FaultPlan
from repro.distributed.message_array import register_schema
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.programs_array import FastSLPAPropagationProgram
from repro.distributed.worker import WorkerShard, build_shards
from repro.graph.generators import erdos_renyi
from repro.graph.partition import ContiguousPartitioner
from repro.workloads.dynamic import random_edit_batch
from repro.workloads.lfr import LFRParams, generate_lfr

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"


def _merge_record(section: str, payload: dict) -> None:
    """Write one top-level section of ``BENCH_distributed.json`` in place,
    preserving whatever the other sweeps recorded."""
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            data = {}
    if not isinstance(data, dict) or "results" in data:
        # pre-merge layout: a single flat engine-sweep payload
        data = {"engine_sweep": data} if isinstance(data, dict) else {}
    data[section] = payload
    RESULT_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

N = scaled(300, 1000, 4000)
ITERATIONS = 10
DEGREES = [4, 8, 16, 32]

# Engine-sweep dimensions (tentpole PR 3): LFR sizes per scale.
LFR_SIZES = scaled([300, 1500], [1000, 4000], [5000, 20000])
SWEEP_ITERATIONS = scaled(20, 30, 40)
SWEEP_WORKERS = 4


def test_message_volume_by_density(benchmark, report):
    rows = []

    def run():
        for k in DEGREES:
            graph = erdos_renyi(N, k / (N - 1), seed=k)
            _, rslpa_stats = run_distributed_rslpa(
                graph.copy(), seed=1, iterations=ITERATIONS, num_workers=4
            )
            _, slpa_stats = run_distributed_slpa(
                graph.copy(), seed=1, iterations=ITERATIONS, num_workers=4
            )
            rows.append(
                (
                    k,
                    graph.num_edges,
                    rslpa_stats.total_messages // ITERATIONS,
                    slpa_stats.total_messages // ITERATIONS,
                    round(
                        slpa_stats.total_messages / max(rslpa_stats.total_messages, 1),
                        2,
                    ),
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Communication: labels per iteration, rSLPA fetch vs SLPA push",
            "rSLPA O(|V|) per iteration; SLPA O(|E|) per iteration",
            "SLPA volume grows with density; rSLPA stays flat at 2|V|",
        )
    )
    report(f"graph: |V|={N}, workers=4, iterations={ITERATIONS}")
    print_table(
        report,
        ["avg degree", "|E|", "rSLPA msgs/iter", "SLPA msgs/iter", "SLPA/rSLPA"],
        rows,
    )

    # rSLPA volume is density-independent; SLPA volume grows.
    rslpa_per_iter = [row[2] for row in rows]
    slpa_per_iter = [row[3] for row in rows]
    assert max(rslpa_per_iter) <= 2 * N
    assert slpa_per_iter[-1] > slpa_per_iter[0] * 4
    assert rows[-1][4] > rows[0][4]


def _sweep_lfr(n: int) -> "Graph":
    return generate_lfr(
        LFRParams(
            n=n, avg_degree=12, max_degree=30, mu=0.1,
            overlap_fraction=0.1, overlap_membership=2,
        ),
        seed=n,
    ).graph


def _engine_sweep(sizes, iterations, workers=SWEEP_WORKERS):
    """Sweep engine × shard_backend for rSLPA and SLPA over LFR sizes.

    Each combination is timed end to end through the cluster wrapper with
    its *native* state export (reference → dict-backed ``LabelState``,
    array → ``ArrayLabelState``), asserted bit-identical against the
    reference run, and recorded with per-superstep message/byte/time
    averages.
    """
    rows = []
    for n in sizes:
        graph = _sweep_lfr(n)
        oracles = {}
        for algo, runner in (
            ("rslpa", run_distributed_rslpa),
            ("slpa", run_distributed_slpa),
        ):
            for engine in ("reference", "array"):
                for shard_backend in ("dict", "csr"):
                    kwargs = dict(
                        seed=1, iterations=iterations, num_workers=workers,
                        shard_backend=shard_backend, engine=engine,
                    )
                    if algo == "rslpa" and engine == "array":
                        kwargs["state_format"] = "array"
                    t0 = time.perf_counter()
                    result, stats = runner(graph.copy(), **kwargs)
                    wall_s = time.perf_counter() - t0
                    # Equality oracle: every combination reproduces the
                    # first run of the same algorithm bit for bit.
                    if algo == "rslpa":
                        observed = (
                            result.to_label_state().labels
                            if engine == "array"
                            else result.labels
                        )
                    else:
                        observed = result
                    oracle = oracles.setdefault(algo, observed)
                    assert observed == oracle, (n, algo, engine, shard_backend)
                    counts = oracles.setdefault(
                        (algo, "stats"), stats.messages_per_superstep()
                    )
                    assert stats.messages_per_superstep() == counts
                    rows.append(
                        {
                            "n": n,
                            "num_edges": graph.num_edges,
                            "algo": algo,
                            "engine": engine,
                            "shard_backend": shard_backend,
                            "iterations": iterations,
                            "workers": workers,
                            "wall_s": wall_s,
                            # benchmark-record field names come straight
                            # off the stats object
                            **stats.as_dict(),
                            "wall_per_superstep_s": wall_s / stats.supersteps,
                            "messages_per_superstep": (
                                stats.total_messages / stats.supersteps
                            ),
                        }
                    )
    return rows


def _speedup(rows, n, algo):
    """array(csr) over reference(dict) wall-clock ratio at size ``n``."""
    def pick(engine, shard_backend):
        for row in rows:
            if (
                row["n"] == n and row["algo"] == algo
                and row["engine"] == engine
                and row["shard_backend"] == shard_backend
            ):
                return row["wall_s"]
        raise KeyError((n, algo, engine, shard_backend))

    return pick("reference", "dict") / pick("array", "csr")


def _report_engine_sweep(report, title, rows, iterations):
    report(
        banner(
            title,
            "Section V-B2: per-round message exchange on the BSP cluster",
            "identical volumes per engine; columnar routing far faster",
        )
    )
    report(f"LFR sweep, workers={SWEEP_WORKERS}, T={iterations}")
    print_table(
        report,
        ["n", "algo", "engine", "shards", "wall (s)", "msgs", "MB",
         "steps", "ms/step"],
        [
            (
                row["n"], row["algo"], row["engine"], row["shard_backend"],
                round(row["wall_s"], 4), row["messages"],
                round(row["bytes"] / 1e6, 2), row["supersteps"],
                round(row["wall_per_superstep_s"] * 1e3, 3),
            )
            for row in rows
        ],
    )


def test_engine_sweep_records_timings(benchmark, report):
    results = {}

    def run():
        results["rows"] = _engine_sweep(LFR_SIZES, SWEEP_ITERATIONS)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = results["rows"]
    _report_engine_sweep(
        report,
        "Engine sweep: columnar vs tuple message plane (rSLPA and SLPA)",
        rows,
        SWEEP_ITERATIONS,
    )

    largest = max(LFR_SIZES)
    rslpa_speedup = _speedup(rows, largest, "rslpa")
    slpa_speedup = _speedup(rows, largest, "slpa")
    report(
        f"array-plane speedup at n={largest}: "
        f"rSLPA {rslpa_speedup:.1f}x, SLPA {slpa_speedup:.1f}x"
    )
    payload = {
        "benchmark": "distributed_engine_sweep",
        "scale": SCALE,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "sweep": {
            "sizes": LFR_SIZES,
            "iterations": SWEEP_ITERATIONS,
            "workers": SWEEP_WORKERS,
        },
        "results": rows,
        "speedups": {
            "rslpa_array_over_reference_at_largest": rslpa_speedup,
            "slpa_array_over_reference_at_largest": slpa_speedup,
        },
    }
    _merge_record("engine_sweep", payload)
    report(f"results recorded in {RESULT_PATH}")

    # The tentpole's acceptance gate: the columnar plane pays off.
    assert rslpa_speedup >= 5.0, f"rSLPA array plane only {rslpa_speedup:.1f}x"
    assert slpa_speedup >= 5.0, f"SLPA array plane only {slpa_speedup:.1f}x"


def test_engine_sweep_smoke(benchmark, report):
    """Scaled-down sweep for CI (`-k smoke`): exercises every
    engine × shard_backend × algorithm combination with the bit-identity
    assertions, no timing regression gate."""
    results = {}

    def run():
        results["rows"] = _engine_sweep([250], 10)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    _report_engine_sweep(
        report,
        "Engine sweep smoke: columnar vs tuple plane on a small LFR",
        results["rows"],
        10,
    )
    assert len(results["rows"]) == 8  # 2 algos x 2 engines x 2 shard backends


# ----------------------------------------------------------------------
# Transport sweep: the multiprocess data plane (PR 6 tentpole)
# ----------------------------------------------------------------------
TRANSPORTS = ("pipe", "shm", "tcp")
TRANSPORT_WORKERS = [2, 4, 8]
TRANSPORT_LFR_N = scaled(2_000, 20_000, 100_000)
TRANSPORT_SLPA_ITERATIONS = scaled(10, 6, 4)
TRANSPORT_TAU = 0.3

# The ballast relay: each worker re-emits this many pre-built rows of the
# wide schema every superstep.  Compute is near zero, so wall-clock is the
# data plane plus the (transport-independent) routing barrier.
BALLAST_ROWS = scaled(30_000, 100_000, 250_000)
BALLAST_SUPERSTEPS = scaled(4, 6, 8)
BALLAST_REPS = scaled(2, 2, 3)
# Floor for min(pipe)/min(shm) at the widest worker count.  Fixed
# per-superstep costs (verbs, acks, spawn-warm caches) compress the ratio
# at small payloads; at paper scale the data plane dominates.
SHM_SPEEDUP_FLOOR = scaled(1.2, 1.5, 2.0)

# Bench-only wide schema: 7 payload fields + dst = 64 bytes per row on the
# wire.  Registered at import time so forked workers inherit it.
BALLAST_KIND = "blst"
BALLAST_FIELDS = ("a", "b", "c", "d", "e", "f", "g")
register_schema(BALLAST_KIND, BALLAST_FIELDS)


class BallastRelayProgram(ArrayWorkerProgram):
    """Re-emits a fixed wide column batch every superstep.

    Destinations are sorted and span the whole id space, so the shared
    ``route_columns`` lexsort runs on nearly ordered keys and stays cheap
    relative to the bytes each transport must move.
    """

    def __init__(self, shard, rows, supersteps, num_vertices):
        super().__init__(shard)
        self.rows = rows
        self.supersteps = supersteps
        self.num_vertices = num_vertices
        self._dst = None
        self._cols = None

    def _payload(self):
        if self._dst is None:  # built once, in the worker process
            self._dst = np.linspace(
                0, self.num_vertices - 1, self.rows, dtype=np.int64
            )
            self._cols = tuple(
                np.zeros(self.rows, dtype=np.int64) for _ in BALLAST_FIELDS
            )
        return self._dst, self._cols

    def on_start(self, ctx):
        dst, cols = self._payload()
        ctx.send_columns(BALLAST_KIND, dst, *cols)

    def on_superstep(self, ctx, superstep, inbox):
        if superstep >= self.supersteps:
            return
        dst, cols = self._payload()
        ctx.send_columns(BALLAST_KIND, dst, *cols)


def _ballast_shards(workers: int, n: int):
    """Adjacency-free shards: the relay never reads neighbours, and empty
    shards keep engine spawn (which is untimed) from pickling the graph."""
    return [
        WorkerShard(worker_id=w, vertices=frozenset(), adjacency={})
        for w in range(workers)
    ]


def _time_ballast(workers: int, n: int, transport: str, reps: int):
    """Steady-state data-plane timing: one engine, an untimed warm-up run
    (faults in ring segments / kernel buffers), then ``reps`` timed runs.
    ``run()`` is re-entrant — a fresh ``start`` verb replays the relay on
    the same live workers, so segment setup never pollutes the numbers."""
    part = ContiguousPartitioner(workers, n)
    factory = partial(
        BallastRelayProgram,
        rows=BALLAST_ROWS,
        supersteps=BALLAST_SUPERSTEPS,
        num_vertices=n,
    )
    engine = MultiprocessBSPEngine(
        _ballast_shards(workers, n), part, factory,
        plane="array", transport=transport,
    )
    try:
        engine.run()  # warm-up, untimed
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            engine.run()
            times.append(time.perf_counter() - t0)
        return times
    finally:
        engine.shutdown()


def _cover(memories, tau=TRANSPORT_TAU):
    """SLPA frequency-threshold extraction (communities as frozensets)."""
    holders = {}
    for v, memory in memories.items():
        length = len(memory)
        for label, count in Counter(memory).items():
            if count / length >= tau:
                holders.setdefault(label, set()).add(v)
    return {frozenset(c) for c in holders.values() if len(c) >= 2}


def _slpa_reference(graph, part, iterations):
    shards = build_shards(graph, part)
    engine = ArrayBSPEngine(shards, part)
    programs = engine.run(
        [FastSLPAPropagationProgram(s, seed=7, iterations=iterations)
         for s in shards]
    )
    memories = {}
    for program in programs:
        memories.update(program.collect())
    return memories, engine.stats.per_superstep


def _slpa_transport_run(graph, part, transport, iterations):
    shards = build_shards(graph, part)
    factory = partial(FastSLPAPropagationProgram, seed=7, iterations=iterations)
    with MultiprocessBSPEngine(
        shards, part, factory, plane="array", transport=transport
    ) as engine:
        t0 = time.perf_counter()
        stats = engine.run()
        wall_s = time.perf_counter() - t0
        results = engine.collect()
    memories = {}
    for result in results:
        memories.update(result)
    return memories, stats.per_superstep, wall_s


def _transport_sweep(graph, workers_list, iterations, reps):
    """Per worker count: SLPA bit-identity across transports, then the
    ballast relay timing.  Returns (slpa_rows, ballast_rows)."""
    n = graph.num_vertices
    slpa_rows, ballast_rows = [], []
    for workers in workers_list:
        part = ContiguousPartitioner(workers, n)
        ref_memories, ref_steps = _slpa_reference(graph, part, iterations)
        ref_cover = _cover(ref_memories)
        assert ref_cover, "SLPA produced no communities; sweep is vacuous"
        for transport in TRANSPORTS:
            memories, steps, wall_s = _slpa_transport_run(
                graph, part, transport, iterations
            )
            assert memories == ref_memories, (workers, transport)
            assert _cover(memories) == ref_cover, (workers, transport)
            assert steps == ref_steps, (workers, transport)
            slpa_rows.append(
                {
                    "workers": workers,
                    "transport": transport,
                    "wall_s": wall_s,
                    "identical_to_in_process": True,
                }
            )
            # The SLPA pass leaves a large driver heap (graph, shards,
            # memories) that forked ballast workers would inherit as
            # copy-on-write pressure; drop it before timing.
            del memories, steps
            gc.collect()
            times = _time_ballast(workers, n, transport, reps)
            payload_mb = (
                workers * BALLAST_ROWS * (len(BALLAST_FIELDS) + 1) * 8 / 1e6
            )
            ballast_rows.append(
                {
                    "workers": workers,
                    "transport": transport,
                    "wall_s": [round(t, 4) for t in times],
                    "best_s": round(min(times), 4),
                    "payload_mb_per_superstep": round(payload_mb, 2),
                    "mb_per_s": round(
                        payload_mb * BALLAST_SUPERSTEPS / min(times), 1
                    ),
                }
            )
    return slpa_rows, ballast_rows


def _ballast_best(rows, workers, transport):
    for row in rows:
        if row["workers"] == workers and row["transport"] == transport:
            return row["best_s"]
    raise KeyError((workers, transport))


def _report_transport_sweep(report, title, graph, slpa_rows, ballast_rows,
                            iterations):
    report(
        banner(
            title,
            "zero-copy shm rings vs pickled pipes vs framed localhost TCP",
            "identical covers and CommStats; shm moves bytes the fastest",
        )
    )
    report(
        f"LFR |V|={graph.num_vertices} |E|={graph.num_edges}, "
        f"SLPA T={iterations}, ballast {BALLAST_ROWS} rows/worker x "
        f"{BALLAST_SUPERSTEPS} supersteps"
    )
    print_table(
        report,
        ["workers", "transport", "SLPA wall (s)", "ballast best (s)",
         "payload MB/step", "MB/s"],
        [
            (
                b["workers"], b["transport"],
                round(s["wall_s"], 3), b["best_s"],
                b["payload_mb_per_superstep"], b["mb_per_s"],
            )
            for s, b in zip(slpa_rows, ballast_rows)
        ],
    )


def test_transport_sweep_records_timings(benchmark, report):
    graph = _sweep_lfr(TRANSPORT_LFR_N)
    results = {}

    def run():
        results["rows"] = _transport_sweep(
            graph, TRANSPORT_WORKERS, TRANSPORT_SLPA_ITERATIONS, BALLAST_REPS
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    slpa_rows, ballast_rows = results["rows"]
    _report_transport_sweep(
        report,
        "Transport sweep: multiprocess data plane (pipe vs shm vs tcp)",
        graph, slpa_rows, ballast_rows, TRANSPORT_SLPA_ITERATIONS,
    )

    widest = max(TRANSPORT_WORKERS)
    shm_speedup = _ballast_best(ballast_rows, widest, "pipe") / _ballast_best(
        ballast_rows, widest, "shm"
    )
    tcp_speedup = _ballast_best(ballast_rows, widest, "pipe") / _ballast_best(
        ballast_rows, widest, "tcp"
    )
    report(
        f"data-plane speedup over pipe at {widest} workers: "
        f"shm {shm_speedup:.1f}x, tcp {tcp_speedup:.1f}x"
    )
    _merge_record(
        "transport_sweep",
        {
            "benchmark": "distributed_transport_sweep",
            "scale": SCALE,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "graph": {
                "n": graph.num_vertices,
                "num_edges": graph.num_edges,
                "family": "lfr",
            },
            "workers": TRANSPORT_WORKERS,
            "transports": list(TRANSPORTS),
            "slpa": {
                "iterations": TRANSPORT_SLPA_ITERATIONS,
                "tau": TRANSPORT_TAU,
                "results": slpa_rows,
            },
            "ballast": {
                "rows_per_worker": BALLAST_ROWS,
                "supersteps": BALLAST_SUPERSTEPS,
                "fields": len(BALLAST_FIELDS),
                "reps": BALLAST_REPS,
                "results": ballast_rows,
            },
            "speedups": {
                "shm_over_pipe_at_widest": round(shm_speedup, 2),
                "tcp_over_pipe_at_widest": round(tcp_speedup, 2),
            },
        },
    )
    report(f"results recorded in {RESULT_PATH}")

    # The tentpole's acceptance gate: zero-copy pays off where the data
    # plane dominates.
    assert shm_speedup >= SHM_SPEEDUP_FLOOR, (
        f"shm only {shm_speedup:.2f}x over pipe at {widest} workers "
        f"(floor {SHM_SPEEDUP_FLOOR} at scale={SCALE})"
    )


def test_transport_sweep_smoke(benchmark, report):
    """Scaled-down transport matrix for CI (`-k "smoke and transport"`):
    SLPA bit-identity across pipe/shm/tcp at 2 workers, tiny ballast,
    no timing gate, no JSON write."""
    graph = _sweep_lfr(250)
    results = {}

    def run():
        n = graph.num_vertices
        part = ContiguousPartitioner(2, n)
        ref_memories, ref_steps = _slpa_reference(graph, part, 8)
        rows = []
        for transport in TRANSPORTS:
            memories, steps, wall_s = _slpa_transport_run(
                graph, part, transport, 8
            )
            assert memories == ref_memories, transport
            assert _cover(memories) == _cover(ref_memories), transport
            assert steps == ref_steps, transport
            rows.append((transport, round(wall_s, 3)))
        results["rows"] = rows
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Transport smoke: pipe vs shm vs tcp, bit-identical SLPA",
            "every transport reproduces the in-process run exactly",
            "covers and per-superstep CommStats match across the matrix",
        )
    )
    print_table(report, ["transport", "SLPA wall (s)"], results["rows"])
    assert len(results["rows"]) == len(TRANSPORTS)


def test_correction_volume_scales_with_eta(benchmark, report):
    graph = erdos_renyi(N, 8 / (N - 1), seed=3)

    rows = []

    def run():
        for batch_size in scaled([4, 16, 64], [10, 100, 1000], [100, 1000]):
            g = graph.copy()
            propagator = ReferencePropagator(g, seed=5)
            propagator.propagate(20)
            batch = random_edit_batch(g, batch_size, seed=batch_size)
            _, _, stats = run_distributed_update(
                g, propagator.state, batch, seed=5, batch_epoch=1, num_workers=4
            )
            rows.append((batch_size, stats.total_messages, stats.supersteps))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Communication: Correction Propagation message volume is O(eta)",
            "only vertices near changed edges communicate",
            "messages grow with batch size, far below a full re-run",
        )
    )
    full_run_messages = 2 * N * 20
    print_table(report, ["batch", "messages", "supersteps"], rows)
    report(f"(full re-propagation would move ~{full_run_messages} messages)")
    assert rows[0][1] < full_run_messages


# ----------------------------------------------------------------------
# Fault tolerance: checkpoint overhead + kill/recovery matrix (PR 7)
# ----------------------------------------------------------------------
FAULT_LFR_N = scaled(400, 2_000, 10_000)
FAULT_ITERATIONS = scaled(6, 8, 10)
FAULT_WORKERS = 4
FAULT_INTERVALS = [1, 2, 4, 8]
FAULT_REPS = scaled(2, 3, 3)


def _fault_slpa_run(graph, part, transport, iterations, *, fault_tolerance,
                    checkpoint_interval=4, fault_plan=None):
    """One supervised SLPA fit: (memories, steps, wall_s, recovery)."""
    shards = build_shards(graph, part)
    factory = partial(
        FastSLPAPropagationProgram, seed=7, iterations=iterations
    )
    with MultiprocessBSPEngine(
        shards, part, factory, plane="array", transport=transport,
        fault_tolerance=fault_tolerance,
        checkpoint_interval=checkpoint_interval,
        max_restarts=part.num_partitions * (iterations + 1),
        fault_plan=fault_plan,
    ) as engine:
        t0 = time.perf_counter()
        stats = engine.run()
        wall_s = time.perf_counter() - t0
        results = engine.collect()
    memories = {}
    for result in results:
        memories.update(result)
    return memories, stats.per_superstep, wall_s, engine.recovery


def _checkpoint_overhead_sweep(graph, part, iterations, reps,
                               transport="shm"):
    """Failure-free wall-clock per checkpoint_interval vs supervision off.

    The paper-facing question for the fault-tolerance knob: what does a
    consistent cut every K barriers cost when nothing ever fails?
    """
    rows = []
    for interval in [None] + FAULT_INTERVALS:
        times, cuts = [], 0
        for _ in range(reps):
            _, _, wall_s, recovery = _fault_slpa_run(
                graph, part, transport, iterations,
                fault_tolerance=interval is not None,
                checkpoint_interval=interval or 4,
            )
            times.append(wall_s)
            cuts = recovery.checkpoints_taken
        rows.append(
            {
                "checkpoint_interval": interval,  # None = supervision off
                "wall_s": [round(t, 4) for t in times],
                "best_s": round(min(times), 4),
                "checkpoints_taken": cuts,
            }
        )
    baseline = rows[0]["best_s"]
    for row in rows:
        row["overhead_pct"] = round(100.0 * (row["best_s"] / baseline - 1), 1)
    return rows


def _kill_matrix(graph, iterations, workers):
    """SIGKILL every (worker, superstep) pair on every transport.

    The acceptance gate of the fault-tolerance tentpole: each killed fit
    must complete with covers AND per-superstep CommStats bit-identical
    to the failure-free run.  Returns per-transport summary rows.
    """
    n = graph.num_vertices
    part = ContiguousPartitioner(workers, n)
    ref_memories, ref_steps = _slpa_reference(graph, part, iterations)
    ref_cover = _cover(ref_memories)
    rows = []
    for transport in TRANSPORTS:
        kills = replayed = 0
        t0 = time.perf_counter()
        for worker in range(workers):
            for superstep in range(iterations + 1):
                memories, steps, _, recovery = _fault_slpa_run(
                    graph, part, transport, iterations,
                    fault_tolerance=True, checkpoint_interval=2,
                    fault_plan=FaultPlan(kill=(worker, superstep)),
                )
                assert memories == ref_memories, (transport, worker, superstep)
                assert _cover(memories) == ref_cover, (
                    transport, worker, superstep,
                )
                assert steps == ref_steps, (transport, worker, superstep)
                assert recovery.recoveries == 1, (transport, worker, superstep)
                kills += 1
                replayed += recovery.supersteps_replayed
        rows.append(
            {
                "transport": transport,
                "kill_sites": kills,
                "all_bit_identical": True,
                "supersteps_replayed_total": replayed,
                "wall_s": round(time.perf_counter() - t0, 2),
            }
        )
    return rows


def test_fault_tolerance_records_overhead(benchmark, report):
    graph = _sweep_lfr(FAULT_LFR_N)
    part = ContiguousPartitioner(FAULT_WORKERS, graph.num_vertices)
    results = {}

    def run():
        results["overhead"] = _checkpoint_overhead_sweep(
            graph, part, FAULT_ITERATIONS, FAULT_REPS
        )
        results["kill_matrix"] = _kill_matrix(
            graph, FAULT_ITERATIONS, FAULT_WORKERS
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    overhead, kill_rows = results["overhead"], results["kill_matrix"]
    report(
        banner(
            "Fault tolerance: checkpoint overhead + kill/recovery matrix",
            "consistent cuts every K barriers; SIGKILL at every site",
            "replay is bit-identical; overhead shrinks as K grows",
        )
    )
    report(
        f"LFR |V|={graph.num_vertices} |E|={graph.num_edges}, "
        f"workers={FAULT_WORKERS}, SLPA T={FAULT_ITERATIONS}, shm transport"
    )
    print_table(
        report,
        ["checkpoint_interval", "best (s)", "cuts", "overhead %"],
        [
            (
                "off" if row["checkpoint_interval"] is None
                else row["checkpoint_interval"],
                row["best_s"], row["checkpoints_taken"], row["overhead_pct"],
            )
            for row in overhead
        ],
    )
    print_table(
        report,
        ["transport", "kill sites", "bit-identical", "replayed steps",
         "wall (s)"],
        [
            (
                row["transport"], row["kill_sites"],
                row["all_bit_identical"],
                row["supersteps_replayed_total"], row["wall_s"],
            )
            for row in kill_rows
        ],
    )
    _merge_record(
        "fault_tolerance",
        {
            "benchmark": "distributed_fault_tolerance",
            "scale": SCALE,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "graph": {
                "n": graph.num_vertices,
                "num_edges": graph.num_edges,
                "family": "lfr",
            },
            "workers": FAULT_WORKERS,
            "iterations": FAULT_ITERATIONS,
            "checkpoint_overhead": {
                "transport": "shm",
                "reps": FAULT_REPS,
                "intervals": FAULT_INTERVALS,
                "results": overhead,
            },
            "kill_matrix": {
                "transports": list(TRANSPORTS),
                "checkpoint_interval": 2,
                "results": kill_rows,
            },
        },
    )
    report(f"results recorded in {RESULT_PATH}")

    # Acceptance: every kill site on every transport recovered exactly.
    assert all(row["all_bit_identical"] for row in kill_rows)
    assert all(
        row["kill_sites"] == FAULT_WORKERS * (FAULT_ITERATIONS + 1)
        for row in kill_rows
    )


# ----------------------------------------------------------------------
# Observability: phase-timing breakdown + tracing overhead (PR 9)
# ----------------------------------------------------------------------
OBS_LFR_N = scaled(400, 2_000, 10_000)
OBS_ITERATIONS = scaled(6, 8, 10)
OBS_WORKERS = [2, 4]
OBS_REPS = scaled(3, 3, 5)
#: Tracing must cost < 5% wall-clock on the multiprocess plane
#: (min-of-reps vs the identical untraced run; DESIGN.md budget).
OBS_OVERHEAD_BUDGET_PCT = 5.0


def _obs_slpa_engine(graph, part, iterations, transport, trace):
    """A reusable (re-entrant) supervised SLPA engine, traced or not."""
    obs = None
    if trace:
        from repro.obs import Obs

        obs = Obs()
    shards = build_shards(graph, part)
    factory = partial(
        FastSLPAPropagationProgram, seed=7, iterations=iterations
    )
    return MultiprocessBSPEngine(
        shards, part, factory, plane="array", transport=transport, obs=obs
    ), obs


def _min_wall(graph, part, iterations, trace, reps, transport="shm"):
    """Best-of-``reps`` wall-clock for one config (untimed warm-up run)."""
    engine, _obs = _obs_slpa_engine(graph, part, iterations, transport, trace)
    try:
        engine.run()  # warm-up, untimed
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            engine.run()
            times.append(time.perf_counter() - t0)
        return min(times)
    finally:
        engine.shutdown()


def _phase_breakdown(graph, workers, iterations, transport="shm"):
    """One traced run's per-phase and per-worker second totals."""
    part = ContiguousPartitioner(workers, graph.num_vertices)
    engine, obs = _obs_slpa_engine(graph, part, iterations, transport, True)
    try:
        t0 = time.perf_counter()
        engine.run()
        wall_s = time.perf_counter() - t0
        engine.collect()
    finally:
        engine.shutdown()
    result = obs.result()
    busy = {}
    for span in result.spans:
        busy[span.worker] = busy.get(span.worker, 0.0) + span.dur_ns / 1e9
    return {
        "workers": workers,
        "wall_s": round(wall_s, 4),
        "spans": len(result.spans),
        "phase_seconds": {
            name: round(total, 6)
            for name, total in result.phase_totals().items()
        },
        "busy_seconds_per_timeline": {
            str(w): round(s, 6) for w, s in sorted(busy.items())
        },
    }


def test_observability_phase_breakdown_records(benchmark, report):
    """Phase-timing breakdown per worker count + tracing overhead,
    recorded into ``BENCH_distributed.json`` (section ``observability``)."""
    graph = _sweep_lfr(OBS_LFR_N)
    results = {}

    def run():
        results["rows"] = [
            _phase_breakdown(graph, workers, OBS_ITERATIONS)
            for workers in OBS_WORKERS
        ]
        widest = max(OBS_WORKERS)
        part = ContiguousPartitioner(widest, graph.num_vertices)
        plain = _min_wall(graph, part, OBS_ITERATIONS, False, OBS_REPS)
        traced = _min_wall(graph, part, OBS_ITERATIONS, True, OBS_REPS)
        results["overhead"] = {
            "workers": widest,
            "reps": OBS_REPS,
            "untraced_best_s": round(plain, 4),
            "traced_best_s": round(traced, 4),
            "overhead_pct": round(100.0 * (traced / plain - 1), 2),
        }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows, overhead = results["rows"], results["overhead"]
    report(
        banner(
            "Observability: superstep phase breakdown + tracing overhead",
            "where each worker's superstep actually goes (spans, merged)",
            "barrier/transport/compute split per worker count; <5% overhead",
        )
    )
    report(
        f"LFR |V|={graph.num_vertices} |E|={graph.num_edges}, "
        f"SLPA T={OBS_ITERATIONS}, shm transport"
    )
    phases = sorted({p for row in rows for p in row["phase_seconds"]})
    print_table(
        report,
        ["workers", "wall (s)", "spans"] + [p.split(".")[-1] for p in phases],
        [
            tuple(
                [row["workers"], row["wall_s"], row["spans"]]
                + [round(row["phase_seconds"].get(p, 0.0), 4) for p in phases]
            )
            for row in rows
        ],
    )
    report(
        f"tracing overhead at {overhead['workers']} workers: "
        f"{overhead['overhead_pct']}% "
        f"({overhead['untraced_best_s']}s -> {overhead['traced_best_s']}s, "
        f"best of {OBS_REPS})"
    )
    _merge_record(
        "observability",
        {
            "benchmark": "distributed_observability",
            "scale": SCALE,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "graph": {
                "n": graph.num_vertices,
                "num_edges": graph.num_edges,
                "family": "lfr",
            },
            "iterations": OBS_ITERATIONS,
            "transport": "shm",
            "phase_breakdown": rows,
            "overhead": overhead,
        },
    )
    report(f"results recorded in {RESULT_PATH}")

    for row in rows:
        assert {
            "engine.compute", "engine.pack", "engine.transport_send",
            "engine.barrier_wait", "engine.route",
        } <= set(row["phase_seconds"]), row["workers"]


def test_observability_overhead_smoke(benchmark, report):
    """Tracing-overhead gate for CI (`-k "smoke"`): a traced multiprocess
    SLPA fit must stay within the 5% wall-clock budget of the identical
    untraced run (best of reps), and record every superstep phase."""
    graph = _sweep_lfr(250)
    part = ContiguousPartitioner(2, graph.num_vertices)
    results = {}

    def run():
        results["plain"] = _min_wall(graph, part, 8, False, OBS_REPS)
        results["traced"] = _min_wall(graph, part, 8, True, OBS_REPS)
        results["breakdown"] = _phase_breakdown(graph, 2, 8)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    plain, traced = results["plain"], results["traced"]
    overhead_pct = 100.0 * (traced / plain - 1)
    report(
        banner(
            "Observability smoke: tracing overhead within budget",
            "span recording is two gated statements per phase",
            f"overhead {overhead_pct:.1f}% (budget "
            f"{OBS_OVERHEAD_BUDGET_PCT}%)",
        )
    )
    breakdown = results["breakdown"]
    print_table(
        report,
        ["phase", "total (s)"],
        sorted(breakdown["phase_seconds"].items()),
    )
    report(
        f"untraced best {plain:.4f}s, traced best {traced:.4f}s "
        f"(best of {OBS_REPS})"
    )
    assert {
        "engine.compute", "engine.pack", "engine.transport_send",
        "engine.barrier_wait", "engine.route",
    } <= set(breakdown["phase_seconds"])
    assert overhead_pct < OBS_OVERHEAD_BUDGET_PCT, (
        f"tracing cost {overhead_pct:.1f}% wall-clock "
        f"(budget {OBS_OVERHEAD_BUDGET_PCT}%)"
    )


def test_fault_recovery_smoke(benchmark, report):
    """Scaled-down recovery matrix for CI (`-k "fault and smoke"`): one
    mid-run SIGKILL per transport at 2 workers, bit-identity asserted,
    no timing gate, no JSON write."""
    graph = _sweep_lfr(250)
    part = ContiguousPartitioner(2, graph.num_vertices)
    ref_memories, ref_steps = _slpa_reference(graph, part, 6)
    results = {}

    def run():
        rows = []
        for transport in TRANSPORTS:
            memories, steps, wall_s, recovery = _fault_slpa_run(
                graph, part, transport, 6,
                fault_tolerance=True, checkpoint_interval=2,
                fault_plan=FaultPlan(kill=(1, 3)),
            )
            assert memories == ref_memories, transport
            assert steps == ref_steps, transport
            assert recovery.recoveries == 1, transport
            rows.append((transport, round(wall_s, 3),
                         recovery.supersteps_replayed))
        results["rows"] = rows
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Fault recovery smoke: SIGKILL mid-fit on every transport",
            "checkpoint/replay restores a consistent cut and respawns",
            "covers and per-superstep CommStats identical to failure-free",
        )
    )
    print_table(
        report, ["transport", "wall (s)", "replayed steps"], results["rows"]
    )
    assert len(results["rows"]) == len(TRANSPORTS)
