"""Ablation: per-iteration communication — rSLPA O(|V|) vs SLPA O(|E|) —
plus the engine sweep: columnar vs tuple message plane with wall-clock.

Section III-A: replacing the full received multiset with a single fetched
label cuts the labels moved per iteration from one per directed edge to one
(request + reply) per vertex.  We measure actual message counts on the BSP
engine across graph densities, and the O(η) cost of Correction Propagation.

The ``engine sweep`` harness runs rSLPA and SLPA across
``engine={reference,array}`` × ``shard_backend={dict,csr}`` on LFR
instances, asserts all combinations bit-identical, and records messages,
bytes and wall-clock per superstep in ``BENCH_distributed.json`` — so the
comm-volume figures finally come with timings.

Run:  PYTHONPATH=src:. python -m pytest benchmarks/bench_ablation_communication.py -q
The ``-k smoke`` selection runs a scaled-down, time-bounded sweep (CI).
"""

import json
import time
from pathlib import Path

from benchmarks.bench_common import SCALE, banner, print_table, scaled
from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import (
    run_distributed_rslpa,
    run_distributed_slpa,
    run_distributed_update,
)
from repro.graph.generators import erdos_renyi
from repro.workloads.dynamic import random_edit_batch
from repro.workloads.lfr import LFRParams, generate_lfr

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"

N = scaled(300, 1000, 4000)
ITERATIONS = 10
DEGREES = [4, 8, 16, 32]

# Engine-sweep dimensions (tentpole PR 3): LFR sizes per scale.
LFR_SIZES = scaled([300, 1500], [1000, 4000], [5000, 20000])
SWEEP_ITERATIONS = scaled(20, 30, 40)
SWEEP_WORKERS = 4


def test_message_volume_by_density(benchmark, report):
    rows = []

    def run():
        for k in DEGREES:
            graph = erdos_renyi(N, k / (N - 1), seed=k)
            _, rslpa_stats = run_distributed_rslpa(
                graph.copy(), seed=1, iterations=ITERATIONS, num_workers=4
            )
            _, slpa_stats = run_distributed_slpa(
                graph.copy(), seed=1, iterations=ITERATIONS, num_workers=4
            )
            rows.append(
                (
                    k,
                    graph.num_edges,
                    rslpa_stats.total_messages // ITERATIONS,
                    slpa_stats.total_messages // ITERATIONS,
                    round(
                        slpa_stats.total_messages / max(rslpa_stats.total_messages, 1),
                        2,
                    ),
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Communication: labels per iteration, rSLPA fetch vs SLPA push",
            "rSLPA O(|V|) per iteration; SLPA O(|E|) per iteration",
            "SLPA volume grows with density; rSLPA stays flat at 2|V|",
        )
    )
    report(f"graph: |V|={N}, workers=4, iterations={ITERATIONS}")
    print_table(
        report,
        ["avg degree", "|E|", "rSLPA msgs/iter", "SLPA msgs/iter", "SLPA/rSLPA"],
        rows,
    )

    # rSLPA volume is density-independent; SLPA volume grows.
    rslpa_per_iter = [row[2] for row in rows]
    slpa_per_iter = [row[3] for row in rows]
    assert max(rslpa_per_iter) <= 2 * N
    assert slpa_per_iter[-1] > slpa_per_iter[0] * 4
    assert rows[-1][4] > rows[0][4]


def _sweep_lfr(n: int) -> "Graph":
    return generate_lfr(
        LFRParams(
            n=n, avg_degree=12, max_degree=30, mu=0.1,
            overlap_fraction=0.1, overlap_membership=2,
        ),
        seed=n,
    ).graph


def _engine_sweep(sizes, iterations, workers=SWEEP_WORKERS):
    """Sweep engine × shard_backend for rSLPA and SLPA over LFR sizes.

    Each combination is timed end to end through the cluster wrapper with
    its *native* state export (reference → dict-backed ``LabelState``,
    array → ``ArrayLabelState``), asserted bit-identical against the
    reference run, and recorded with per-superstep message/byte/time
    averages.
    """
    rows = []
    for n in sizes:
        graph = _sweep_lfr(n)
        oracles = {}
        for algo, runner in (
            ("rslpa", run_distributed_rslpa),
            ("slpa", run_distributed_slpa),
        ):
            for engine in ("reference", "array"):
                for shard_backend in ("dict", "csr"):
                    kwargs = dict(
                        seed=1, iterations=iterations, num_workers=workers,
                        shard_backend=shard_backend, engine=engine,
                    )
                    if algo == "rslpa" and engine == "array":
                        kwargs["state_format"] = "array"
                    t0 = time.perf_counter()
                    result, stats = runner(graph.copy(), **kwargs)
                    wall_s = time.perf_counter() - t0
                    # Equality oracle: every combination reproduces the
                    # first run of the same algorithm bit for bit.
                    if algo == "rslpa":
                        observed = (
                            result.to_label_state().labels
                            if engine == "array"
                            else result.labels
                        )
                    else:
                        observed = result
                    oracle = oracles.setdefault(algo, observed)
                    assert observed == oracle, (n, algo, engine, shard_backend)
                    counts = oracles.setdefault(
                        (algo, "stats"), stats.messages_per_superstep()
                    )
                    assert stats.messages_per_superstep() == counts
                    rows.append(
                        {
                            "n": n,
                            "num_edges": graph.num_edges,
                            "algo": algo,
                            "engine": engine,
                            "shard_backend": shard_backend,
                            "iterations": iterations,
                            "workers": workers,
                            "wall_s": wall_s,
                            "supersteps": stats.supersteps,
                            "messages": stats.total_messages,
                            "bytes": stats.total_bytes,
                            "remote_messages": stats.total_remote_messages,
                            "wall_per_superstep_s": wall_s / stats.supersteps,
                            "messages_per_superstep": (
                                stats.total_messages / stats.supersteps
                            ),
                        }
                    )
    return rows


def _speedup(rows, n, algo):
    """array(csr) over reference(dict) wall-clock ratio at size ``n``."""
    def pick(engine, shard_backend):
        for row in rows:
            if (
                row["n"] == n and row["algo"] == algo
                and row["engine"] == engine
                and row["shard_backend"] == shard_backend
            ):
                return row["wall_s"]
        raise KeyError((n, algo, engine, shard_backend))

    return pick("reference", "dict") / pick("array", "csr")


def _report_engine_sweep(report, title, rows, iterations):
    report(
        banner(
            title,
            "Section V-B2: per-round message exchange on the BSP cluster",
            "identical volumes per engine; columnar routing far faster",
        )
    )
    report(f"LFR sweep, workers={SWEEP_WORKERS}, T={iterations}")
    print_table(
        report,
        ["n", "algo", "engine", "shards", "wall (s)", "msgs", "MB",
         "steps", "ms/step"],
        [
            (
                row["n"], row["algo"], row["engine"], row["shard_backend"],
                round(row["wall_s"], 4), row["messages"],
                round(row["bytes"] / 1e6, 2), row["supersteps"],
                round(row["wall_per_superstep_s"] * 1e3, 3),
            )
            for row in rows
        ],
    )


def test_engine_sweep_records_timings(benchmark, report):
    results = {}

    def run():
        results["rows"] = _engine_sweep(LFR_SIZES, SWEEP_ITERATIONS)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = results["rows"]
    _report_engine_sweep(
        report,
        "Engine sweep: columnar vs tuple message plane (rSLPA and SLPA)",
        rows,
        SWEEP_ITERATIONS,
    )

    largest = max(LFR_SIZES)
    rslpa_speedup = _speedup(rows, largest, "rslpa")
    slpa_speedup = _speedup(rows, largest, "slpa")
    report(
        f"array-plane speedup at n={largest}: "
        f"rSLPA {rslpa_speedup:.1f}x, SLPA {slpa_speedup:.1f}x"
    )
    payload = {
        "benchmark": "distributed_engine_sweep",
        "scale": SCALE,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "sweep": {
            "sizes": LFR_SIZES,
            "iterations": SWEEP_ITERATIONS,
            "workers": SWEEP_WORKERS,
        },
        "results": rows,
        "speedups": {
            "rslpa_array_over_reference_at_largest": rslpa_speedup,
            "slpa_array_over_reference_at_largest": slpa_speedup,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    report(f"results recorded in {RESULT_PATH}")

    # The tentpole's acceptance gate: the columnar plane pays off.
    assert rslpa_speedup >= 5.0, f"rSLPA array plane only {rslpa_speedup:.1f}x"
    assert slpa_speedup >= 5.0, f"SLPA array plane only {slpa_speedup:.1f}x"


def test_engine_sweep_smoke(benchmark, report):
    """Scaled-down sweep for CI (`-k smoke`): exercises every
    engine × shard_backend × algorithm combination with the bit-identity
    assertions, no timing regression gate."""
    results = {}

    def run():
        results["rows"] = _engine_sweep([250], 10)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    _report_engine_sweep(
        report,
        "Engine sweep smoke: columnar vs tuple plane on a small LFR",
        results["rows"],
        10,
    )
    assert len(results["rows"]) == 8  # 2 algos x 2 engines x 2 shard backends


def test_correction_volume_scales_with_eta(benchmark, report):
    graph = erdos_renyi(N, 8 / (N - 1), seed=3)

    rows = []

    def run():
        for batch_size in scaled([4, 16, 64], [10, 100, 1000], [100, 1000]):
            g = graph.copy()
            propagator = ReferencePropagator(g, seed=5)
            propagator.propagate(20)
            batch = random_edit_batch(g, batch_size, seed=batch_size)
            _, _, stats = run_distributed_update(
                g, propagator.state, batch, seed=5, batch_epoch=1, num_workers=4
            )
            rows.append((batch_size, stats.total_messages, stats.supersteps))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Communication: Correction Propagation message volume is O(eta)",
            "only vertices near changed edges communicate",
            "messages grow with batch size, far below a full re-run",
        )
    )
    full_run_messages = 2 * N * 20
    print_table(report, ["batch", "messages", "supersteps"], rows)
    report(f"(full re-propagation would move ~{full_run_messages} messages)")
    assert rows[0][1] < full_run_messages
