"""Ablation: the entropy-maximising τ1 rule (Eq. 1) vs fixed thresholds.

The paper picks τ1 = argmax of the community-size entropy and
τ2 = min_i max_j w_ij (Eq. 2).  This harness sweeps fixed τ1 values on an
LFR instance and reports where the entropy choice lands relative to the
achievable NMI ceiling — quantifying how much quality the heuristic gives
away (typically little) in exchange for needing no ground truth.
"""

from benchmarks.bench_common import banner, print_table, scaled
from repro.core.fast import FastPropagator
from repro.core.postprocess import (
    edge_weights,
    extract_communities,
    weak_threshold,
)
from repro.metrics.nmi import nmi_overlapping

RSLPA_T = scaled(150, 200, 200)
FIXED_GRID = 9


def test_tau1_entropy_vs_fixed(benchmark, report, default_lfr):
    lfr = default_lfr
    graph = lfr.graph
    n = graph.num_vertices

    def run():
        fast = FastPropagator(graph, seed=2)
        fast.propagate(RSLPA_T)
        sequences = {v: fast.labels[:, v].tolist() for v in range(n)}
        weights = edge_weights(graph, sequences)
        tau2 = weak_threshold(graph, weights)
        max_w = max(weights.values())

        entropy_result = extract_communities(graph, sequences, step=0.001)
        entropy_nmi = nmi_overlapping(
            entropy_result.cover.as_sets(), lfr.communities, n
        )

        fixed_rows = []
        for i in range(1, FIXED_GRID + 1):
            tau1 = tau2 + (max_w - tau2) * i / (FIXED_GRID + 1)
            result = extract_communities(
                graph, sequences, tau1=tau1, tau2=tau2
            )
            fixed_rows.append(
                (
                    round(tau1, 4),
                    nmi_overlapping(result.cover.as_sets(), lfr.communities, n),
                    len(result.cover),
                )
            )
        return entropy_result, entropy_nmi, fixed_rows

    entropy_result, entropy_nmi, fixed_rows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        banner(
            "Ablation: entropy-chosen tau1 (Eq. 1) vs fixed thresholds",
            "the heuristic needs no ground truth yet should track the ceiling",
            "entropy choice within a small margin of the best fixed tau1",
        )
    )
    rows = [("entropy (Eq. 1)", round(entropy_result.tau1, 4), entropy_nmi,
             len(entropy_result.cover))]
    rows += [(f"fixed #{i+1}", tau, nmi, k) for i, (tau, nmi, k) in enumerate(fixed_rows)]
    print_table(report, ["choice", "tau1", "NMI", "#communities"], rows)

    best_fixed = max(nmi for _tau, nmi, _k in fixed_rows)
    report(
        f"entropy NMI {entropy_nmi:.3f} vs best fixed {best_fixed:.3f} "
        f"(gap {best_fixed - entropy_nmi:+.3f})"
    )
    # The heuristic must come within a reasonable margin of the ceiling and
    # beat the worst fixed choices decisively.
    worst_fixed = min(nmi for _tau, nmi, _k in fixed_rows)
    assert entropy_nmi >= best_fixed - 0.25
    assert entropy_nmi >= worst_fixed
