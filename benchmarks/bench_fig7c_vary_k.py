"""Figure 7c — NMI vs average degree k (SLPA vs rSLPA).

Paper: scores grow with k and flatten once k is large enough (>= 50 at
paper scale): denser graphs give label propagation more signal.
"""

from benchmarks.bench_common import banner, print_table, scaled
from benchmarks.fig7_common import default_params, sweep_panel

DEGREES = scaled(
    [8, 12, 16, 20, 26],
    [10, 20, 30, 40, 50],
    [10, 20, 30, 40, 50, 60, 70],
)


def _params(k):
    return default_params(
        avg_degree=float(k),
        max_degree=max(int(2.5 * k), k + 6),
    )


def test_fig7c_vary_k(benchmark, report):
    rows = benchmark.pedantic(
        lambda: sweep_panel(DEGREES, _params), rounds=1, iterations=1
    )
    report(
        banner(
            "Figure 7c: NMI when varying average degree k",
            "score grows with k, then saturates; both handle sparse graphs",
            "sparsest point is the hardest; no collapse at high k",
        )
    )
    print_table(report, ["k", "SLPA NMI", "rSLPA NMI"], rows)

    slpa_scores = [r[1] for r in rows]
    rslpa_scores = [r[2] for r in rows]
    # Densest graphs should not be worse than the sparsest ones.
    assert slpa_scores[-1] >= slpa_scores[0] - 0.1
    assert rslpa_scores[-1] >= rslpa_scores[0] - 0.1
    assert min(rslpa_scores) > 0.3
