"""Backend substrate benchmark — reference vs CSR-backed paths on LFR.

Times the three layers the shared CSR substrate accelerates and records the
numbers in ``BENCH_backends.json`` at the repository root, so the perf
trajectory of the array substrate is tracked across PRs:

1. **builder** — the legacy per-vertex Python fill loop (the duplicated
   builder this refactor deleted, re-inlined here as the baseline) vs the
   vectorised :func:`repro.graph.csr.build_csr_arrays`;
2. **propagation** — pure-Python :class:`ReferencePropagator` vs the
   CSR-backed :class:`FastPropagator`, and reference :class:`SLPA` vs
   :class:`FastSLPA`, on the Table-I LFR instance;
3. **sharding** — dict-of-list :func:`build_shards` vs
   :func:`build_csr_shards` (CSR slice, no Graph round trip).

Run:  PYTHONPATH=src:. python -m pytest benchmarks/bench_backend_substrate.py -q
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.bench_common import SCALE, banner, print_table, scaled
from repro.baselines.slpa import SLPA
from repro.baselines.slpa_fast import FastSLPA
from repro.core.fast import FastPropagator
from repro.core.rslpa import ReferencePropagator
from repro.distributed.worker import build_csr_shards, build_shards
from repro.graph.csr import CSRGraph, build_csr_arrays
from repro.graph.partition import HashPartitioner
from repro.workloads.lfr import LFRParams, generate_lfr

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_backends.json"

RSLPA_T = scaled(40, 100, 200)
SLPA_T = scaled(20, 50, 100)
NUM_WORKERS = 4


def _legacy_graph_to_csr(graph):
    """The pre-refactor per-vertex fill loop (kept only as a baseline)."""
    n = graph.num_vertices
    indptr = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        indptr[v + 1] = indptr[v] + graph.degree(v)
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    for v in range(n):
        nbrs = sorted(graph.neighbors_view(v))
        indices[indptr[v] : indptr[v + 1]] = nbrs
    return indptr, indices


def _timed(fn, repeats=3):
    """Best-of-N wall time plus the last return value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_backend_substrate(benchmark, report, default_lfr):
    graph = default_lfr.graph
    n, m = graph.num_vertices, graph.num_edges
    results = {}

    def run_all():
        # --- 1. CSR builder: legacy loop vs vectorised ------------------
        t_legacy, legacy = _timed(lambda: _legacy_graph_to_csr(graph))
        t_vector, vector = _timed(lambda: build_csr_arrays(graph))
        assert np.array_equal(legacy[0], vector[0])
        assert np.array_equal(legacy[1], vector[1])
        results["builder"] = {
            "legacy_loop_s": t_legacy,
            "vectorized_s": t_vector,
            "speedup": t_legacy / t_vector if t_vector else float("inf"),
        }

        csr = CSRGraph.from_graph(graph)

        # --- 2. propagation: reference vs CSR-backed engines ------------
        def run_reference_rslpa():
            ref = ReferencePropagator(graph.copy(), seed=1)
            ref.propagate(RSLPA_T)

        def run_fast_rslpa():
            fast = FastPropagator(csr, seed=1)
            fast.propagate(RSLPA_T)

        t_ref, _ = _timed(run_reference_rslpa, repeats=1)
        t_fast, _ = _timed(run_fast_rslpa, repeats=1)
        results["rslpa"] = {
            "iterations": RSLPA_T,
            "reference_s": t_ref,
            "csr_fast_s": t_fast,
            "speedup": t_ref / t_fast if t_fast else float("inf"),
        }

        def run_reference_slpa():
            slpa = SLPA(graph.copy(), seed=1, iterations=SLPA_T)
            slpa.propagate()

        def run_fast_slpa():
            fast = FastSLPA(csr, seed=1, iterations=SLPA_T)
            fast.propagate()

        t_ref_slpa, _ = _timed(run_reference_slpa, repeats=1)
        t_fast_slpa, _ = _timed(run_fast_slpa, repeats=1)
        results["slpa"] = {
            "iterations": SLPA_T,
            "reference_s": t_ref_slpa,
            "csr_fast_s": t_fast_slpa,
            "speedup": t_ref_slpa / t_fast_slpa if t_fast_slpa else float("inf"),
        }

        # --- 3. sharding: dict slices vs CSR slices ---------------------
        part = HashPartitioner(NUM_WORKERS)
        t_dict, _ = _timed(lambda: build_shards(graph, part))
        t_csr, _ = _timed(lambda: build_csr_shards(csr, part))
        results["sharding"] = {
            "num_workers": NUM_WORKERS,
            "dict_shards_s": t_dict,
            "csr_shards_s": t_csr,
        }
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(
        banner(
            "Backend substrate: reference vs CSR-backed paths (LFR Table I)",
            "internal perf-trajectory benchmark (no paper counterpart)",
            "vectorised builder and CSR engines ahead of the Python loops",
        )
    )
    report(f"LFR instance: |V|={n}, |E|={m}")
    print_table(
        report,
        ["stage", "reference (s)", "CSR path (s)", "speedup"],
        [
            ("csr build", round(results["builder"]["legacy_loop_s"], 4),
             round(results["builder"]["vectorized_s"], 4),
             f"{results['builder']['speedup']:.1f}x"),
            (f"rSLPA T={RSLPA_T}", round(results["rslpa"]["reference_s"], 3),
             round(results["rslpa"]["csr_fast_s"], 3),
             f"{results['rslpa']['speedup']:.1f}x"),
            (f"SLPA T={SLPA_T}", round(results["slpa"]["reference_s"], 3),
             round(results["slpa"]["csr_fast_s"], 3),
             f"{results['slpa']['speedup']:.1f}x"),
            (f"shard x{NUM_WORKERS}", round(results["sharding"]["dict_shards_s"], 4),
             round(results["sharding"]["csr_shards_s"], 4), "-"),
        ],
    )

    payload = {
        "benchmark": "backend_substrate",
        "scale": SCALE,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph": {"kind": "lfr_table1", "num_vertices": n, "num_edges": m},
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    report(f"results recorded in {RESULT_PATH}")

    # Shape assertions: the substrate must actually pay for itself.
    assert results["builder"]["vectorized_s"] < results["builder"]["legacy_loop_s"]
    assert results["rslpa"]["csr_fast_s"] < results["rslpa"]["reference_s"]
    assert results["slpa"]["csr_fast_s"] < results["slpa"]["reference_s"]


if __name__ == "__main__":  # pragma: no cover - ad-hoc run without pytest
    params = LFRParams(n=1000, avg_degree=16.0, max_degree=40, mu=0.1,
                       overlap_fraction=0.1, overlap_membership=2)
    lfr = generate_lfr(params, seed=42)

    class _Bench:
        @staticmethod
        def pedantic(fn, rounds=1, iterations=1):
            fn()

    test_backend_substrate(_Bench(), print, lfr)
