"""Shared infrastructure for the benchmark harnesses.

Every harness reproduces one table or figure of the paper (see DESIGN.md's
experiment index) and prints the same rows/series the paper reports, next to
the paper's expected shape.  Absolute numbers are not comparable — the paper
ran Scala/Spark on a 7-node cluster; we run pure Python on one machine — but
the *shape* (who wins, by what factor, where crossovers fall) is.

Scaling: set ``REPRO_SCALE=small|medium|paper`` (default ``small``) to pick
input sizes.  ``paper`` uses the paper's parameters where feasible; expect
long runtimes.
"""

from __future__ import annotations

import os
from typing import Sequence

__all__ = ["SCALE", "scaled", "print_table", "print_series", "banner"]

SCALE = os.environ.get("REPRO_SCALE", "small")
if SCALE not in ("small", "medium", "paper"):
    raise ValueError(f"REPRO_SCALE must be small|medium|paper, got {SCALE!r}")


def scaled(small, medium, paper):
    """Pick a per-scale value."""
    return {"small": small, "medium": medium, "paper": paper}[SCALE]


def banner(title: str, paper_ref: str, expectation: str) -> str:
    """A harness header recording what the paper reports."""
    lines = [
        "=" * 78,
        f"{title}   [scale={SCALE}]",
        f"paper: {paper_ref}",
        f"expected shape: {expectation}",
        "=" * 78,
    ]
    return "\n".join(lines)


def print_table(writer, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Fixed-width table printer (no external deps)."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    writer(line)
    writer("  ".join("-" * w for w in widths))
    for row in text_rows:
        writer("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def print_series(writer, name: str, xs: Sequence, ys: Sequence[float]) -> None:
    """One figure series as a row of (x, y) pairs."""
    pairs = "  ".join(f"({x}, {y:.3f})" for x, y in zip(xs, ys))
    writer(f"{name}: {pairs}")
