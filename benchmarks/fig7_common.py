"""Shared machinery for the Figure 7 sweeps (panels b-f).

Each panel varies one LFR parameter and compares the NMI of SLPA (T=100,
τ=0.2 — the paper's setting) against rSLPA (T=200, entropy/min-max
thresholds).  ``sweep_panel`` runs the sweep and returns rows of
``(value, nmi_slpa, nmi_rslpa)``.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from benchmarks.bench_common import scaled
from repro.baselines.slpa_fast import FastSLPA
from repro.core.fast import FastPropagator
from repro.core.postprocess import extract_communities
from repro.metrics.nmi import nmi_overlapping
from repro.workloads.lfr import LFRGraph, LFRParams, generate_lfr

__all__ = ["default_params", "detect_pair", "sweep_panel", "RSLPA_T", "SLPA_T"]

RSLPA_T = scaled(200, 200, 200)
SLPA_T = scaled(100, 100, 100)
SLPA_TAU = 0.2
TAU_STEP = 0.005


def default_params(**overrides) -> LFRParams:
    """Table I defaults at the current scale, with per-panel overrides."""
    base = dict(
        n=scaled(1000, 4000, 10_000),
        avg_degree=scaled(16.0, 24.0, 30.0),
        max_degree=scaled(40, 70, 100),
        mu=0.1,
        overlap_fraction=0.1,
        overlap_membership=2,
    )
    base.update(overrides)
    return LFRParams(**base)


def detect_pair(lfr: LFRGraph, seed: int) -> Tuple[float, float]:
    """Run both detectors on one instance; return (nmi_slpa, nmi_rslpa)."""
    n = lfr.graph.num_vertices

    slpa = FastSLPA(lfr.graph, seed=seed, iterations=SLPA_T, threshold=SLPA_TAU)
    slpa.propagate()
    nmi_slpa = nmi_overlapping(
        slpa.extract().as_sets(), lfr.communities, n
    )

    fast = FastPropagator(lfr.graph, seed=seed)
    fast.propagate(RSLPA_T)
    sequences = {v: fast.labels[:, v].tolist() for v in range(n)}
    result = extract_communities(lfr.graph, sequences, step=TAU_STEP)
    nmi_rslpa = nmi_overlapping(result.cover.as_sets(), lfr.communities, n)
    return nmi_slpa, nmi_rslpa


REPEATS = scaled(2, 2, 1)


def sweep_panel(
    values: Sequence,
    params_for: Callable[[object], LFRParams],
    seed: int = 11,
    repeats: int = REPEATS,
) -> List[Tuple[object, float, float]]:
    """Sweep one parameter; averages ``repeats`` runs per point."""
    rows = []
    for value in values:
        slpa_total = rslpa_total = 0.0
        for r in range(repeats):
            lfr = generate_lfr(params_for(value), seed=seed + 97 * r)
            s, rs = detect_pair(lfr, seed=seed + 31 * r)
            slpa_total += s
            rslpa_total += rs
        rows.append((value, slpa_total / repeats, rslpa_total / repeats))
    return rows
