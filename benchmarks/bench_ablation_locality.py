"""Ablation: partition locality — hash vs community-aligned placement.

The paper runs on Spark's default hash partitioning.  Because rSLPA's
messages flow along edges (fetches go to neighbours), a partitioner that
co-locates communities turns most traffic worker-local.  This harness
quantifies the remote-message fraction for hash vs contiguous partitioning
on a community-structured graph — the knob a deployment would tune first.
"""

from benchmarks.bench_common import banner, print_table, scaled
from repro.distributed.cluster import run_distributed_rslpa
from repro.graph.generators import ring_of_cliques
from repro.graph.partition import ContiguousPartitioner, HashPartitioner

NUM_CLIQUES = scaled(12, 24, 48)
CLIQUE_SIZE = scaled(8, 10, 12)
WORKERS = 4
ITERATIONS = 10


def test_partitioner_locality(benchmark, report):
    graph = ring_of_cliques(NUM_CLIQUES, CLIQUE_SIZE)
    n = graph.num_vertices

    def run():
        results = {}
        _, hash_stats = run_distributed_rslpa(
            graph.copy(), seed=1, iterations=ITERATIONS,
            num_workers=WORKERS, partitioner=HashPartitioner(WORKERS),
        )
        results["hash"] = hash_stats
        _, range_stats = run_distributed_rslpa(
            graph.copy(), seed=1, iterations=ITERATIONS,
            num_workers=WORKERS,
            partitioner=ContiguousPartitioner(WORKERS, n),
        )
        results["contiguous"] = range_stats
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Ablation: partition locality (hash vs community-aligned)",
            "(deployment knob; the paper uses Spark's default hash partitioning)",
            "contiguous placement keeps most fetch traffic worker-local",
        )
    )
    rows = []
    for name, stats in results.items():
        remote_fraction = stats.total_remote_messages / stats.total_messages
        rows.append(
            (name, stats.total_messages, stats.total_remote_messages,
             f"{100 * remote_fraction:.1f}%")
        )
    print_table(report, ["partitioner", "messages", "remote", "remote %"], rows)

    hash_remote = results["hash"].total_remote_messages
    contiguous_remote = results["contiguous"].total_remote_messages
    report(
        f"community-aligned placement cuts remote traffic "
        f"{hash_remote / max(contiguous_remote, 1):.1f}x"
    )
    # Identical total volume (same algorithm), very different remote share.
    assert results["hash"].total_messages == results["contiguous"].total_messages
    assert contiguous_remote < hash_remote
