"""Figure 9 — incremental updating vs recomputation from scratch,
across edit-batch sizes, for BOTH correction engines.

Paper (batch sizes 100 .. 100,000, half insertions / half deletions):
incremental updating is far cheaper than from-scratch for every batch size,
and its cost grows *sublinearly* in the batch size (overlapping influence
regions), making large batches especially attractive.

This harness sweeps each batch size through the reference (pure-Python,
event-driven) corrector AND the vectorised array corrector, asserts the two
repairs are bit-identical, and records the reference/fast speedup trajectory
in ``BENCH_incremental.json`` (same shape as ``BENCH_backends.json``), along
with the ``to_label_state`` vs ``to_array_state`` export comparison.

Run:  PYTHONPATH=src:. python -m pytest benchmarks/bench_fig9_incremental.py -q
The ``-k smoke`` selection runs a scaled-down, time-bounded sweep (CI).
"""

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.bench_common import SCALE, banner, print_table, scaled
from repro.core.fast import FastPropagator
from repro.core.incremental import CorrectionPropagator
from repro.core.incremental_fast import FastCorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.graph.csr import CSRGraph
from repro.graph.edits import apply_batch
from repro.workloads.dynamic import random_edit_batch
from repro.workloads.webgraph import WebGraphParams, generate_webgraph

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

ITERATIONS = scaled(60, 100, 200)
BATCH_SIZES = scaled(
    [10, 30, 100, 300, 1000, 3000],
    [100, 300, 1000, 3000, 10_000],
    [100, 500, 1000, 5000, 10_000, 50_000, 100_000],
)


def _assert_repairs_identical(ref_corrector, fast_corrector):
    """Both engines' post-batch states, compared matrix against matrix."""
    state = ref_corrector.state
    astate = fast_corrector.state
    n = astate.num_columns
    for name, matrix in (
        ("labels", astate.labels),
        ("srcs", astate.srcs),
        ("poss", astate.poss),
        ("epochs", astate.epochs),
    ):
        ref_matrix = np.array(
            [getattr(state, name)[v] for v in range(n)], dtype=np.int64
        ).T
        assert np.array_equal(ref_matrix, matrix), f"{name} diverged"


def _sweep(graph, iterations, batch_sizes, seed=3):
    """One full Figure-9 sweep; returns (rows, export timing dict)."""
    rows = []
    export = None
    for batch_size in batch_sizes:
        # Reference side: pure-Python propagate + event-driven corrector.
        ref_graph = graph.copy()
        ref_prop = ReferencePropagator(ref_graph, seed=seed)
        ref_prop.propagate(iterations)
        ref_corrector = CorrectionPropagator(ref_prop, track_slots=False)

        # Fast side: CSR propagate + array export + vectorised corrector.
        fast_graph = graph.copy()
        fast_prop = FastPropagator(CSRGraph.from_graph(fast_graph), seed=seed)
        fast_prop.propagate(iterations)
        if export is None:
            t0 = time.perf_counter()
            fast_prop.to_label_state()
            dict_export_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            astate = fast_prop.to_array_state()
            array_export_s = time.perf_counter() - t0
            export = {
                "to_label_state_s": dict_export_s,
                "to_array_state_s": array_export_s,
                "speedup": dict_export_s / array_export_s
                if array_export_s
                else float("inf"),
            }
        else:
            astate = fast_prop.to_array_state()
        fast_corrector = FastCorrectionPropagator(
            fast_graph, astate, seed, track_slots=False
        )

        batch = random_edit_batch(graph, batch_size, seed=batch_size)

        t0 = time.perf_counter()
        ref_report = ref_corrector.apply_batch(batch)
        reference_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        fast_report = fast_corrector.apply_batch(batch)
        fast_s = time.perf_counter() - t0

        assert ref_report.touched_labels == fast_report.touched_labels
        assert ref_report.repicked == fast_report.repicked
        _assert_repairs_identical(ref_corrector, fast_corrector)

        # From-scratch baselines on the post-batch graph.
        scratch_graph = graph.copy()
        apply_batch(scratch_graph, batch)
        t0 = time.perf_counter()
        ReferencePropagator(scratch_graph, seed=seed).propagate(iterations)
        scratch_ref_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        scratch_fast = FastPropagator(CSRGraph.from_graph(scratch_graph), seed=seed)
        scratch_fast.propagate(iterations)
        scratch_fast.to_array_state()  # fair: scratch must also yield records
        scratch_fast_s = time.perf_counter() - t0

        rows.append(
            {
                "batch_size": batch_size,
                "reference_s": reference_s,
                "fast_s": fast_s,
                "speedup": reference_s / fast_s if fast_s else float("inf"),
                "eta": ref_report.touched_labels,
                "scratch_reference_s": scratch_ref_s,
                "scratch_fast_s": scratch_fast_s,
            }
        )
    return rows, export


def _report_sweep(report, title, graph, iterations, rows, export):
    report(
        banner(
            title,
            "Fig. 9: running time of rSLPA incremental updating vs from scratch",
            "incremental far below scratch; fast corrector well ahead of reference",
        )
    )
    report(
        f"substitute graph: |V|={graph.num_vertices}, "
        f"|E|={graph.num_edges}, T={iterations}"
    )
    report(
        f"state export: to_label_state {export['to_label_state_s']:.3f}s vs "
        f"to_array_state {export['to_array_state_s']:.3f}s "
        f"({export['speedup']:.1f}x)"
    )
    print_table(
        report,
        [
            "batch size",
            "reference (s)",
            "fast (s)",
            "speedup",
            "eta",
            "scratch ref (s)",
            "scratch fast (s)",
        ],
        [
            (
                row["batch_size"],
                round(row["reference_s"], 4),
                round(row["fast_s"], 4),
                f"{row['speedup']:.1f}x",
                row["eta"],
                round(row["scratch_reference_s"], 3),
                round(row["scratch_fast_s"], 4),
            )
            for row in rows
        ],
    )


def test_fig9_incremental_vs_scratch(benchmark, report, webgraph):
    base_graph = webgraph.graph
    results = {}

    def run_sweep():
        rows, export = _sweep(base_graph, ITERATIONS, BATCH_SIZES)
        results["batches"] = rows
        results["export"] = export
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows, export = results["batches"], results["export"]

    _report_sweep(
        report,
        "Figure 9: incremental updating, reference vs vectorised corrector",
        base_graph,
        ITERATIONS,
        rows,
        export,
    )

    payload = {
        "benchmark": "fig9_incremental",
        "scale": SCALE,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph": {
            "kind": "webgraph_eu2015tpd_substitute",
            "num_vertices": base_graph.num_vertices,
            "num_edges": base_graph.num_edges,
            "iterations": ITERATIONS,
        },
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    report(f"results recorded in {RESULT_PATH}")

    # Shape assertions (paper Figure 9 + the array substrate's contract).
    for row in rows:
        assert row["reference_s"] < row["scratch_reference_s"], (
            f"reference incremental slower than scratch at batch {row['batch_size']}"
        )
        if row["batch_size"] >= 1000:
            assert row["speedup"] >= 5.0, (
                f"fast corrector only {row['speedup']:.1f}x at "
                f"batch {row['batch_size']}"
            )
    assert export["speedup"] >= 5.0, (
        f"to_array_state only {export['speedup']:.1f}x over to_label_state"
    )
    # Sublinearity: across a batch-size step, touched labels grow slower
    # than the batch size (overlapping influence regions).
    etas = {row["batch_size"]: row["eta"] for row in rows}
    sizes = sorted(etas)
    for small, large in zip(sizes, sizes[1:]):
        growth = etas[large] / max(etas[small], 1)
        ratio = large / small
        assert growth < ratio * 1.5, (
            f"eta growth {growth:.1f}x vs batch growth {ratio:.1f}x"
        )


def test_fig9_smoke(benchmark, report):
    """Scaled-down sweep for CI (`pytest benchmarks -k smoke`): exercises the
    full reference-vs-fast incremental path on a small webgraph in seconds,
    with the bit-identity assertions but no timing regression gate."""
    graph = generate_webgraph(
        WebGraphParams(n=2500, avg_out_degree=8.0), seed=7
    ).graph
    results = {}

    def run_sweep():
        rows, export = _sweep(graph, 30, [50, 200])
        results["batches"] = rows
        results["export"] = export
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    _report_sweep(
        report,
        "Figure 9 smoke: incremental engines on a small webgraph",
        graph,
        30,
        results["batches"],
        results["export"],
    )
    # Time-bounded correctness run only — the bit-identity asserts inside
    # _sweep are the gate; timing thresholds stay with the full sweep.
    assert len(results["batches"]) == 2


if __name__ == "__main__":  # pragma: no cover - ad-hoc run without pytest
    params = WebGraphParams(n=8000, avg_out_degree=10.0)
    instance = generate_webgraph(params, seed=7)

    class _Bench:
        @staticmethod
        def pedantic(fn, rounds=1, iterations=1):
            fn()

    class _Webgraph:
        graph = instance.graph

    test_fig9_incremental_vs_scratch(_Bench(), print, _Webgraph())
