"""Figure 9 — incremental updating vs recomputation from scratch,
across edit-batch sizes.

Paper (batch sizes 100 .. 100,000, half insertions / half deletions):
incremental updating is far cheaper than from-scratch for every batch size,
and its cost grows *sublinearly* in the batch size (overlapping influence
regions), making large batches especially attractive.

Both sides use the same reference (pure-Python, event-driven) engine so the
comparison is apples-to-apples: scratch = full T-iteration propagation on
the updated graph; incremental = Correction Propagation from the maintained
state.
"""

import time

from benchmarks.bench_common import banner, print_table, scaled
from repro.core.incremental import CorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.graph.edits import apply_batch
from repro.workloads.dynamic import random_edit_batch

ITERATIONS = scaled(60, 100, 200)
BATCH_SIZES = scaled(
    [10, 30, 100, 300, 1000, 3000],
    [100, 300, 1000, 3000, 10_000],
    [100, 500, 1000, 5000, 10_000, 50_000, 100_000],
)


def test_fig9_incremental_vs_scratch(benchmark, report, webgraph):
    base_graph = webgraph.graph

    rows = []

    def run_sweep():
        for batch_size in BATCH_SIZES:
            graph = base_graph.copy()
            propagator = ReferencePropagator(graph, seed=3)
            propagator.propagate(ITERATIONS)
            corrector = CorrectionPropagator(propagator)
            batch = random_edit_batch(graph, batch_size, seed=batch_size)

            t0 = time.perf_counter()
            update_report = corrector.apply_batch(batch)
            incremental_s = time.perf_counter() - t0

            scratch_graph = base_graph.copy()
            apply_batch(scratch_graph, batch)
            t0 = time.perf_counter()
            scratch = ReferencePropagator(scratch_graph, seed=3)
            scratch.propagate(ITERATIONS)
            scratch_s = time.perf_counter() - t0

            rows.append(
                (
                    batch_size,
                    round(incremental_s, 3),
                    round(scratch_s, 3),
                    round(scratch_s / incremental_s, 1),
                    update_report.touched_labels,
                )
            )
        return rows

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report(
        banner(
            "Figure 9: running time of rSLPA incremental updating vs from scratch",
            "incremental far below scratch at every batch size; sublinear growth",
            "speedup largest for small batches; 10x batch -> much less than 10x time",
        )
    )
    report(
        f"substitute graph: |V|={base_graph.num_vertices}, "
        f"|E|={base_graph.num_edges}, T={ITERATIONS}"
    )
    print_table(
        report,
        ["batch size", "incremental (s)", "scratch (s)", "speedup", "eta (labels touched)"],
        rows,
    )

    # Shape assertions.
    for row in rows:
        assert row[1] < row[2], f"incremental slower than scratch at batch {row[0]}"
    # Sublinearity: across a 10x batch-size step, touched labels grow < 10x.
    etas = {row[0]: row[4] for row in rows}
    sizes = sorted(etas)
    for small, large in zip(sizes, sizes[1:]):
        growth = etas[large] / max(etas[small], 1)
        ratio = large / small
        assert growth < ratio * 1.5, (
            f"eta growth {growth:.1f}x vs batch growth {ratio:.1f}x"
        )
