"""Figure 7e — NMI vs memberships of overlapping vertices om.

Paper: both scores decrease slowly as om grows 2 -> 5 (vertices in more
communities are harder to assign); "Compared to SLPA, rSLPA has better
performance when om >= 3" because its label sequences keep more
belongingness information.
"""

from benchmarks.bench_common import banner, print_table
from benchmarks.fig7_common import default_params, sweep_panel

MEMBERSHIPS = [2, 3, 4, 5]


def test_fig7e_vary_om(benchmark, report):
    rows = benchmark.pedantic(
        lambda: sweep_panel(
            MEMBERSHIPS, lambda om: default_params(overlap_membership=om)
        ),
        rounds=1,
        iterations=1,
    )
    report(
        banner(
            "Figure 7e: NMI when varying om (memberships of overlapping vertices)",
            "both decrease slowly with om; rSLPA relatively better at high om",
            "high-om points are harder than om=2 for both algorithms",
        )
    )
    print_table(report, ["om", "SLPA NMI", "rSLPA NMI"], rows)

    slpa_scores = [r[1] for r in rows]
    rslpa_scores = [r[2] for r in rows]
    # Difficulty grows with om for both.
    assert slpa_scores[-1] <= slpa_scores[0] + 0.05
    assert rslpa_scores[-1] <= rslpa_scores[0] + 0.05
    # The paper's relative-advantage claim, measured as the gap shrinking
    # (or reversing) from om=2 to om=5.
    gap_at_2 = slpa_scores[0] - rslpa_scores[0]
    gap_at_5 = slpa_scores[-1] - rslpa_scores[-1]
    report(f"SLPA-rSLPA gap: om=2 -> {gap_at_2:+.3f}, om=5 -> {gap_at_5:+.3f}")
