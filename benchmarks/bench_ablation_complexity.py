"""Ablation: the Section IV-D cost model against measured update counts.

For each batch size we measure η (labels actually touched by Correction
Propagation) and compare it with the model: best case T|V|·pc (Eq. 10),
expectation η̂ (Eq. 8), worst case (Eq. 12).  Also contrasts the corrected
Eq. 3 with the paper's verbatim (typo) version.
"""

from benchmarks.bench_common import banner, print_table, scaled
from repro.core.complexity import (
    best_case_updates,
    change_probability,
    change_probability_paper_verbatim,
    expected_updates,
    worst_case_updates,
)
from repro.core.incremental import CorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.graph.generators import erdos_renyi
from repro.workloads.dynamic import random_edit_batch

N = scaled(800, 2000, 10_000)
AVG_DEGREE = 10
ITERATIONS = scaled(40, 60, 100)
BATCH_SIZES = scaled([4, 16, 64, 256], [10, 100, 1000], [100, 1000, 10_000])
REPEATS = scaled(3, 2, 1)


def test_eta_model_vs_measured(benchmark, report):
    graph = erdos_renyi(N, AVG_DEGREE / (N - 1), seed=1)
    e = graph.num_edges

    rows = []

    def run():
        for batch_size in BATCH_SIZES:
            measured = 0.0
            for r in range(REPEATS):
                g = graph.copy()
                propagator = ReferencePropagator(g, seed=10 + r)
                propagator.propagate(ITERATIONS)
                corrector = CorrectionPropagator(propagator)
                batch = random_edit_batch(g, batch_size, seed=1000 * batch_size + r)
                update = corrector.apply_batch(batch)
                measured += update.touched_labels
            measured /= REPEATS
            md, ma = batch_size // 2, batch_size - batch_size // 2
            pc = change_probability(e, md, ma)
            rows.append(
                (
                    batch_size,
                    round(best_case_updates(N, ITERATIONS, pc), 1),
                    round(expected_updates(N, ITERATIONS, pc), 1),
                    round(measured, 1),
                    round(worst_case_updates(N, ITERATIONS, pc), 1),
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        banner(
            "Section IV-D: measured eta vs the analytical model",
            "eta = P * T * |V| with Q(t) recursion; bounded by Eqs 10/12",
            "measured eta falls between the best and worst bounds, near eta-hat",
        )
    )
    report(f"graph: |V|={N}, |E|={e}, T={ITERATIONS}, repeats={REPEATS}")
    print_table(
        report,
        ["batch", "best (Eq.10)", "eta-hat (Eq.8)", "measured", "worst (Eq.12)"],
        rows,
    )

    for batch_size, best, expected, measured, worst in rows:
        assert measured <= worst * 1.5, f"batch {batch_size}: above worst bound"
        assert measured >= best * 0.3, f"batch {batch_size}: below best bound"


def test_eq3_typo_comparison(benchmark, report):
    """The corrected vs verbatim Eq. 3 across batch sizes."""
    e = 100_000

    def compute():
        return [
            (
                batch,
                change_probability(e, batch // 2, batch // 2),
                change_probability_paper_verbatim(e, batch // 2, batch // 2),
            )
            for batch in (2, 20, 200, 2000, 20_000)
        ]

    rows = benchmark(compute)
    report(
        banner(
            "Eq. 3 as printed vs as intended (documented typo)",
            "pc should vanish for tiny batches",
            "verbatim formula saturates near 1 even for 2 edits on 100K edges",
        )
    )
    print_table(report, ["batch", "pc corrected", "pc verbatim"], rows)
    assert rows[0][1] < 1e-4
    assert rows[0][2] > 0.99
