"""Figure 7f — NMI vs number of overlapping vertices on.

Paper: as on grows from 0.1N to 0.3N, "the performance of both algorithms
becomes worse" — community boundaries get fuzzier.
"""

from benchmarks.bench_common import banner, print_table
from benchmarks.fig7_common import default_params, sweep_panel

OVERLAP_FRACTIONS = [0.1, 0.15, 0.2, 0.25, 0.3]


def test_fig7f_vary_on(benchmark, report):
    rows = benchmark.pedantic(
        lambda: sweep_panel(
            OVERLAP_FRACTIONS,
            lambda frac: default_params(overlap_fraction=frac),
        ),
        rounds=1,
        iterations=1,
    )
    report(
        banner(
            "Figure 7f: NMI when varying on (number of overlapping vertices)",
            "both degrade as on grows 0.1N -> 0.3N",
            "more overlap -> fuzzier boundaries -> lower NMI for both",
        )
    )
    print_table(report, ["on/N", "SLPA NMI", "rSLPA NMI"], rows)

    slpa_scores = [r[1] for r in rows]
    rslpa_scores = [r[2] for r in rows]
    assert slpa_scores[-1] < slpa_scores[0]
    assert rslpa_scores[-1] <= rslpa_scores[0] + 0.05
