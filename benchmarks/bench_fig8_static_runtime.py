"""Figure 8 — running time of SLPA vs rSLPA on the static web graph,
split into label propagation and post-processing.

Paper's observations (Spark, 7 nodes, eu-2015-tpd):
  * label propagation: rSLPA (T=200) more than 2x faster than SLPA (T=100)
    overall, i.e. >5x faster per iteration — it moves one label per vertex
    instead of one per edge;
  * post-processing: SLPA much cheaper (simple thresholding) than rSLPA
    (connected components + threshold sweep);
  * total: rSLPA slightly faster overall.

We measure the same decomposition with the vectorised engines on the
web-graph substitute, plus the per-iteration label volume that drives it.
"""

import time

from benchmarks.bench_common import banner, print_table, scaled
from repro.baselines.slpa_fast import FastSLPA
from repro.core.fast import FastPropagator
from repro.core.postprocess import extract_communities

RSLPA_T = 200
SLPA_T = 100
TAU_STEP = scaled(0.01, 0.005, 0.001)


def test_fig8_static_runtime(benchmark, report, webgraph):
    graph = webgraph.graph
    n, m = graph.num_vertices, graph.num_edges

    timings = {}

    def run_all():
        t0 = time.perf_counter()
        slpa = FastSLPA(graph, seed=1, iterations=SLPA_T, threshold=0.2)
        slpa.propagate()
        timings["slpa_prop"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        slpa.extract()
        timings["slpa_post"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        rslpa = FastPropagator(graph, seed=1)
        rslpa.propagate(RSLPA_T)
        timings["rslpa_prop"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        sequences = {v: rslpa.labels[:, v].tolist() for v in range(n)}
        extract_communities(graph, sequences, step=TAU_STEP)
        timings["rslpa_post"] = time.perf_counter() - t0
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(
        banner(
            "Figure 8: running time of SLPA and rSLPA on the static web graph",
            "SLPA ~700s prop + ~30s post; rSLPA ~330s prop + ~320s post (7-node Spark)",
            "rSLPA propagation faster despite 2x iterations; SLPA post cheaper; "
            "totals comparable with rSLPA slightly ahead",
        )
    )
    report(f"substitute graph: |V|={n}, |E|={m}")
    rows = [
        ("SLPA", SLPA_T, round(timings["slpa_prop"], 2),
         round(timings["slpa_post"], 2),
         round(timings["slpa_prop"] + timings["slpa_post"], 2)),
        ("rSLPA", RSLPA_T, round(timings["rslpa_prop"], 2),
         round(timings["rslpa_post"], 2),
         round(timings["rslpa_prop"] + timings["rslpa_post"], 2)),
    ]
    print_table(
        report,
        ["algorithm", "iterations", "label prop (s)", "post-proc (s)", "total (s)"],
        rows,
    )

    per_iter_slpa = timings["slpa_prop"] / SLPA_T
    per_iter_rslpa = timings["rslpa_prop"] / RSLPA_T
    report(
        f"per-iteration propagation: SLPA {per_iter_slpa * 1e3:.1f} ms, "
        f"rSLPA {per_iter_rslpa * 1e3:.1f} ms "
        f"(ratio {per_iter_slpa / per_iter_rslpa:.1f}x; paper reports >5x)"
    )
    report(
        f"labels moved per iteration: SLPA 2|E| = {2 * m}, rSLPA |V| = {n} "
        f"(ratio {2 * m / n:.1f}x)"
    )

    # Shape assertions.
    assert per_iter_rslpa < per_iter_slpa, "rSLPA must be faster per iteration"
    assert timings["slpa_post"] < timings["rslpa_post"], (
        "SLPA post-processing (thresholding) must be cheaper than rSLPA's "
        "(components + sweep)"
    )
