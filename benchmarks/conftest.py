"""Benchmark fixtures: un-captured reporting plus shared workloads."""

from __future__ import annotations

import pytest

from benchmarks.bench_common import scaled
from repro.workloads.lfr import LFRParams, generate_lfr
from repro.workloads.webgraph import WebGraphParams, generate_webgraph


@pytest.fixture
def report(capsys):
    """A print function that bypasses pytest's output capture.

    Benchmarks must show their tables in ``pytest benchmarks/`` output
    without requiring ``-s``.
    """

    def _write(*lines):
        with capsys.disabled():
            for line in lines:
                print(line)

    return _write


@pytest.fixture(scope="session")
def default_lfr():
    """The Table-I default LFR instance at the current scale."""
    params = LFRParams(
        n=scaled(1000, 4000, 10_000),
        avg_degree=scaled(16.0, 24.0, 30.0),
        max_degree=scaled(40, 70, 100),
        mu=0.1,
        overlap_fraction=0.1,
        overlap_membership=2,
    )
    return generate_lfr(params, seed=42)


@pytest.fixture(scope="session")
def webgraph():
    """The eu-2015-tpd substitute at the current scale."""
    params = WebGraphParams(
        n=scaled(8_000, 30_000, 200_000),
        avg_out_degree=scaled(10.0, 14.0, 25.0),
    )
    return generate_webgraph(params, seed=7)
