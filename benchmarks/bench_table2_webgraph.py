"""Table II — statistics of the eu-2015-tpd web crawl (our substitute).

The crawl itself (6.65M nodes / 170M directed edges) is not redistributable
and exceeds a pure-Python single machine, so we generate a synthetic
web-like graph (see ``repro.workloads.webgraph``) that preserves the
*shape*: heavy-tailed degrees, max out-degree several times the max
in-degree, and the binary normalisation the paper applies.  Rows are printed
next to the paper's values with the scale ratio made explicit.
"""

from benchmarks.bench_common import banner, print_table
from repro.workloads.webgraph import webgraph_statistics

PAPER_VALUES = {
    "# nodes": 6_650_532,
    "# edges": 170_145_510,
    "avg. degree": 25.584,
    "max in-degree": 74_129,
    "max out-degree": 398_599,
}


def test_table2_webgraph_statistics(benchmark, report, webgraph):
    stats = benchmark.pedantic(
        lambda: webgraph_statistics(webgraph), rounds=1, iterations=1
    )
    measured = dict(stats)
    report(
        banner(
            "Table II: statistics of dataset eu-2015-tpd (synthetic substitute)",
            "6.65M nodes, 170.1M edges, avg 25.58, max-in 74K, max-out 399K",
            "heavy tails; max out-degree multiple times max in-degree",
        )
    )
    rows = []
    for key, paper_value in PAPER_VALUES.items():
        rows.append((key, paper_value, measured[key]))
    print_table(report, ["statistic", "paper (eu-2015-tpd)", "substitute"], rows)

    out_over_in_paper = PAPER_VALUES["max out-degree"] / PAPER_VALUES["max in-degree"]
    out_over_in_ours = measured["max out-degree"] / measured["max in-degree"]
    report(
        f"max-out / max-in ratio: paper {out_over_in_paper:.2f}, "
        f"substitute {out_over_in_ours:.2f}"
    )

    # Shape assertions: the substitution must preserve the qualitative rows.
    assert measured["max out-degree"] > measured["max in-degree"]
    n = measured["# nodes"]
    assert measured["max out-degree"] > 10 * measured["avg. degree"]
    assert measured["avg. degree"] > 5
