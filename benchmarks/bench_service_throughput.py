"""Service layer — ingest throughput and query latency decoupling.

The paper's operating mode (Section V-B3) separates absorbing changes from
computing communities.  The service layer turns that into an architectural
guarantee: queries are dictionary lookups against the cached
``MembershipIndex`` extraction, so their latency must be *flat* while the
ingest batch size sweeps 10 → 10k, and ingest throughput must *grow* with
the batch size (Correction Propagation's sublinear η amortises).  A second
sweep varies the staleness bound K to show the query-side cost of
freshness, and the ingest sweep is repeated with the write-ahead log
enabled to price durability.

A third sweep prices the replication plane: a supervised primary plus N
replicas ingests a stream while a scripted fault kills the primary
mid-run.  The sweep reports failover latency (the wall time of the batch
that absorbed the promotion, against the median batch) and query
availability (client queries answered throughout — stale serves and
re-routes counted, errors fatal).

Records ``BENCH_service.json``.

Run:  PYTHONPATH=src:. python -m pytest benchmarks/bench_service_throughput.py -q
The ``-k smoke`` selection runs a scaled-down, time-bounded sweep (CI).
"""

import json
import statistics
import tempfile
import time
from pathlib import Path

from benchmarks.bench_common import SCALE, banner, print_table, scaled
from repro.api.config import AlgoConfig, ServicePlanConfig
from repro.distributed.faults import FaultPlan
from repro.service import CommunityService, ServiceSupervisor
from repro.workloads.dynamic import EditStream
from repro.workloads.webgraph import WebGraphParams, generate_webgraph

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

ITERATIONS = scaled(30, 60, 100)
# The acceptance sweep: ingest batch size 10 -> 10k at every scale.
BATCH_SIZES = scaled(
    [10, 100, 1000, 10_000],
    [10, 100, 1000, 10_000],
    [10, 100, 1000, 10_000, 100_000],
)
EDITS_TOTAL = scaled(6_000, 30_000, 200_000)
NUM_QUERIES = scaled(3_000, 10_000, 30_000)
STALENESS_SWEEP = scaled([1, 4, 16], [1, 4, 16], [1, 4, 16, 64])
# Replication sweep: replica counts per transport, on a bounded graph —
# every extra replica is a full child process holding its own detector.
REPLICA_SWEEP = scaled([1, 2], [1, 2, 3], [1, 2, 3, 4])
REPLICATION_GRAPH_N = scaled(1_200, 2_500, 5_000)
REPLICATION_BATCHES = scaled(10, 14, 20)


def _build_service(graph, batch_size, staleness, checkpoint_dir=None):
    return CommunityService(
        graph,
        seed=3,
        iterations=ITERATIONS,
        backend="fast",
        batch_size=batch_size,
        staleness_batches=staleness,
        checkpoint_every=0,  # WAL-only durability: price the log, not npz writes
        checkpoint_dir=checkpoint_dir,
    ).start()


def _ingest(service, graph, batch_size, edits_total):
    """Apply ``edits_total`` edits in ``batch_size`` windows; return seconds."""
    num_batches = max(1, edits_total // batch_size)
    stream = EditStream(graph, batch_size=batch_size, seed=17)
    batches = stream.take(num_batches)
    t0 = time.perf_counter()
    for batch in batches:
        service.apply(batch)
    return time.perf_counter() - t0, num_batches * batch_size


def _measure_queries(service, num_queries):
    """Mean query latency (µs) against the cached index, post-refresh."""
    service.refresh()
    n = service.graph.num_vertices
    vertices = [(v * 9973) % n for v in range(num_queries)]
    t0 = time.perf_counter()
    for v in vertices:
        service.communities_of(v)
    elapsed = time.perf_counter() - t0
    return elapsed / num_queries * 1e6


def _ingest_sweep(graph, batch_sizes, edits_total, num_queries):
    rows = []
    for batch_size in batch_sizes:
        service = _build_service(graph, batch_size, staleness=10**9)
        ingest_s, edits = _ingest(service, graph, batch_size, edits_total)

        with tempfile.TemporaryDirectory() as wal_dir:
            durable = _build_service(
                graph, batch_size, staleness=10**9, checkpoint_dir=wal_dir
            )
            durable_s, _ = _ingest(durable, graph, batch_size, edits_total)
            durable.close()

        query_us = _measure_queries(service, num_queries)
        rows.append(
            {
                "batch_size": batch_size,
                "edits": edits,
                "ingest_s": ingest_s,
                "ingest_eps": edits / ingest_s if ingest_s else float("inf"),
                "durable_ingest_s": durable_s,
                "durable_ingest_eps": edits / durable_s if durable_s else float("inf"),
                "query_mean_us": query_us,
            }
        )
    return rows


def _staleness_sweep(graph, staleness_values, num_batches=20, queries_per_batch=50):
    """Interleaved ingest/query under different staleness bounds K."""
    rows = []
    for staleness in staleness_values:
        service = _build_service(graph, batch_size=100, staleness=staleness)
        stream = EditStream(graph, batch_size=100, seed=29)
        batches = stream.take(num_batches)
        extractions_before = service.extractions
        n = service.graph.num_vertices
        t0 = time.perf_counter()
        for batch in batches:
            service.apply(batch)
            for q in range(queries_per_batch):
                service.communities_of((q * 7919) % n)
        elapsed = time.perf_counter() - t0
        queries = num_batches * queries_per_batch
        rows.append(
            {
                "staleness_batches": staleness,
                "batches": num_batches,
                "queries": queries,
                "extractions": service.extractions - extractions_before,
                "amortised_query_us": elapsed / queries * 1e6,
            }
        )
    return rows


def _replication_sweep(graph, replica_counts, transports=("pipe",),
                       num_batches=12, batch_size=100,
                       queries_per_batch=20, kill=True):
    """Failover latency and query availability under a mid-stream kill.

    Each cell runs a supervised primary + N replicas over the same edit
    stream; with ``kill`` a scripted fault SIGKILLs the primary at the
    middle WAL sequence ("applied" phase, so the promotion also replays
    one record).  The batch that absorbs the failover is timed against
    the median batch; the client keeps querying throughout — a query
    *error* (as opposed to a counted stale serve or re-route) fails the
    benchmark on the spot.
    """
    rows = []
    kill_seq = max(1, num_batches // 2)
    for transport in transports:
        for replicas in replica_counts:
            config = ServicePlanConfig(
                algo=AlgoConfig(seed=3, iterations=ITERATIONS),
                batch_size=batch_size,
                staleness_batches=4,
                checkpoint_every=4,
                replicas=replicas,
                service_transport=transport,
            )
            fault = (
                FaultPlan(kill_primary=(kill_seq, "applied"))
                if kill else None
            )
            stream = EditStream(graph, batch_size=batch_size, seed=17)
            batches = stream.take(num_batches)
            n = graph.num_vertices
            with tempfile.TemporaryDirectory() as state_dir:
                sup = ServiceSupervisor(
                    graph, state_dir, config, fault_plan=fault
                ).start()
                try:
                    client = sup.client()
                    batch_times = []
                    for batch in batches:
                        t0 = time.perf_counter()
                        sup.apply(batch)
                        batch_times.append(time.perf_counter() - t0)
                        for q in range(queries_per_batch):
                            client.communities_of((q * 7919) % n)
                    stats = sup.stats()
                finally:
                    sup.shutdown()
            median_ms = statistics.median(batch_times) * 1e3
            failover_ms = (
                batch_times[kill_seq - 1] * 1e3 if kill else None
            )
            rows.append(
                {
                    "transport": transport,
                    "replicas": replicas,
                    "batches": num_batches,
                    "killed_at_seq": kill_seq if kill else None,
                    "failovers": stats["failovers"],
                    "replayed_records": stats["replayed_records"],
                    "median_batch_ms": median_ms,
                    "failover_batch_ms": failover_ms,
                    "queries": client.queries_served,
                    "stale_serves": client.stale_serves,
                    "reroutes": client.reroutes,
                    "primary_fallbacks": client.primary_fallbacks,
                }
            )
    return rows


def _report_replication(report, rows):
    report("")
    print_table(
        report,
        [
            "wire",
            "replicas",
            "failovers",
            "median batch (ms)",
            "failover batch (ms)",
            "queries",
            "stale",
            "reroutes",
        ],
        [
            (
                row["transport"],
                row["replicas"],
                row["failovers"],
                round(row["median_batch_ms"], 1),
                round(row["failover_batch_ms"], 1)
                if row["failover_batch_ms"] is not None else "-",
                row["queries"],
                row["stale_serves"],
                row["reroutes"],
            )
            for row in rows
        ],
    )


def _report_sweeps(report, title, graph, ingest_rows, staleness_rows):
    report(
        banner(
            title,
            "Section V-B3 operating mode: update continuously, extract on demand",
            "query latency flat across batch sizes; ingest eps grows with batching",
        )
    )
    report(
        f"substitute graph: |V|={graph.num_vertices}, "
        f"|E|={graph.num_edges}, T={ITERATIONS}, backend=fast"
    )
    print_table(
        report,
        [
            "batch size",
            "edits",
            "ingest (s)",
            "edits/s",
            "+WAL edits/s",
            "query mean (us)",
        ],
        [
            (
                row["batch_size"],
                row["edits"],
                round(row["ingest_s"], 3),
                round(row["ingest_eps"]),
                round(row["durable_ingest_eps"]),
                round(row["query_mean_us"], 2),
            )
            for row in ingest_rows
        ],
    )
    report("")
    print_table(
        report,
        ["staleness K", "batches", "queries", "extractions", "amortised query (us)"],
        [
            (
                row["staleness_batches"],
                row["batches"],
                row["queries"],
                row["extractions"],
                round(row["amortised_query_us"], 1),
            )
            for row in staleness_rows
        ],
    )


def test_service_throughput(benchmark, report, webgraph):
    graph = webgraph.graph
    results = {}

    replication_graph = generate_webgraph(
        WebGraphParams(n=REPLICATION_GRAPH_N, avg_out_degree=8.0), seed=7
    ).graph

    def run_sweeps():
        results["ingest"] = _ingest_sweep(
            graph, BATCH_SIZES, EDITS_TOTAL, NUM_QUERIES
        )
        results["staleness"] = _staleness_sweep(graph, STALENESS_SWEEP)
        results["replication"] = _replication_sweep(
            replication_graph, REPLICA_SWEEP,
            transports=("pipe", "tcp"),
            num_batches=REPLICATION_BATCHES,
        )
        return results

    benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    ingest_rows, staleness_rows = results["ingest"], results["staleness"]

    _report_sweeps(
        report,
        "Service layer: ingest throughput vs query latency",
        graph,
        ingest_rows,
        staleness_rows,
    )
    report(
        f"replication graph: |V|={replication_graph.num_vertices}, "
        f"|E|={replication_graph.num_edges}; primary killed mid-stream"
    )
    _report_replication(report, results["replication"])

    payload = {
        "benchmark": "service_throughput",
        "scale": SCALE,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph": {
            "kind": "webgraph_eu2015tpd_substitute",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "iterations": ITERATIONS,
        },
        "config": {
            "edits_total": EDITS_TOTAL,
            "num_queries": NUM_QUERIES,
            "backend": "fast",
        },
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    report(f"results recorded in {RESULT_PATH}")

    # Shape assertions — the decoupling contract.
    latencies = [row["query_mean_us"] for row in ingest_rows]
    assert max(latencies) <= 5 * min(latencies), (
        f"query latency not flat across ingest batch sizes: {latencies}"
    )
    # Batching amortises the per-batch overhead: the biggest window must
    # out-ingest the smallest by a clear margin.
    assert ingest_rows[-1]["ingest_eps"] > 2 * ingest_rows[0]["ingest_eps"], (
        "ingest throughput did not grow with batch size"
    )
    # Laxer staleness must not extract more often than stricter staleness.
    extractions = [row["extractions"] for row in staleness_rows]
    assert all(a >= b for a, b in zip(extractions, extractions[1:])), (
        f"extraction counts not monotone in K: {extractions}"
    )
    # Replication availability contract: the kill fired, exactly one
    # failover happened, and every client query was answered.
    for row in results["replication"]:
        assert row["failovers"] == 1, row
        assert row["queries"] == row["batches"] * 20, row


def test_service_smoke(benchmark, report):
    """Scaled-down sweep for CI (`pytest benchmarks -k smoke`): exercises the
    full ingest/query/staleness paths plus WAL-priced ingest in seconds,
    without the timing-based shape gates."""
    graph = generate_webgraph(
        WebGraphParams(n=1500, avg_out_degree=8.0), seed=7
    ).graph
    results = {}

    def run_sweeps():
        results["ingest"] = _ingest_sweep(
            graph, [10, 100], edits_total=400, num_queries=500
        )
        results["staleness"] = _staleness_sweep(
            graph, [1, 4], num_batches=6, queries_per_batch=10
        )
        results["replication"] = _replication_sweep(
            graph, [2], num_batches=6, batch_size=50, queries_per_batch=5
        )
        return results

    benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    _report_sweeps(
        report,
        "Service layer smoke: ingest/query sweeps on a small webgraph",
        graph,
        results["ingest"],
        results["staleness"],
    )
    _report_replication(report, results["replication"])
    assert len(results["ingest"]) == 2
    assert all(row["extractions"] >= 1 for row in results["staleness"])
    assert results["replication"][0]["failovers"] == 1
    assert results["replication"][0]["queries"] == 6 * 5


if __name__ == "__main__":  # pragma: no cover - ad-hoc run without pytest
    instance = generate_webgraph(WebGraphParams(n=8000, avg_out_degree=10.0), seed=7)

    class _Bench:
        @staticmethod
        def pedantic(fn, rounds=1, iterations=1):
            fn()

    class _Webgraph:
        graph = instance.graph

    test_service_throughput(_Bench(), print, _Webgraph())
