"""Table I — LFR benchmark parameters, and the realised graph statistics.

The paper's Table I lists the generator parameters (N, maxk, k, µ, on, om);
the default setting is N=10,000, k=30, maxk=100, om=2, on=0.1N, µ=0.1.
This harness prints the parameter table at the current scale together with
the *realised* statistics of the generated graph, verifying the generator
hits its targets; the benchmark measures generation cost.
"""

from benchmarks.bench_common import banner, print_table
from repro.workloads.lfr import generate_lfr


def test_table1_lfr_parameters(benchmark, report, default_lfr):
    params = default_lfr.params
    lfr = default_lfr

    def regenerate():
        return generate_lfr(params, seed=43)

    fresh = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    report(
        banner(
            "Table I: parameters of the LFR benchmark",
            "defaults N=10000, k=30, maxk=100, om=2, on=0.1N, mu=0.1",
            "generator must realise the requested parameters",
        )
    )
    rows = [
        ("N (number of vertices)", params.n, lfr.graph.num_vertices),
        ("k (average degree)", params.avg_degree,
         round(lfr.graph.average_degree(), 2)),
        ("maxk (max degree)", params.max_degree, lfr.graph.max_degree()),
        ("mu (mixing parameter)", params.mu, round(lfr.empirical_mu(), 3)),
        ("on (overlapping vertices)", params.num_overlapping,
         len(lfr.overlapping_vertices)),
        ("om (memberships of overlapping)", params.overlap_membership,
         max(len(m) for m in lfr.memberships.values())),
        ("(derived) communities", "-", len(lfr.communities)),
        ("(derived) edges", "-", lfr.graph.num_edges),
    ]
    print_table(report, ["parameter", "requested", "realised"], rows)

    # The generator must hit its targets (tolerances documented in tests).
    assert abs(lfr.graph.average_degree() - params.avg_degree) < 0.25 * params.avg_degree
    assert len(lfr.overlapping_vertices) == params.num_overlapping
    assert fresh.graph.num_vertices == params.n
