"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP
517 editable installs (which require building a wheel) cannot work; this
shim lets ``pip install -e .`` fall back to ``setup.py develop``.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
